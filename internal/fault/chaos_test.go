package fault_test

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"energydb/internal/core"
	"energydb/internal/exec"
	"energydb/internal/fault"
	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/tpch"
)

// The chaos harness: a multi-stream TPC-H workload under a seeded
// schedule of arrivals, deadlines, early closes, and device faults —
// optionally with a whole-engine crash mid-workload. Every run asserts
// the lifecycle invariants the PR is about:
//
//   - every statement ends in either the fault-free answer or a typed
//     *exec.QueryError — never a hang, never a silent wrong result;
//   - the engine drains to zero live processes and every admission grant
//     is returned;
//   - attributed joules over all statements plus the unattributed floor
//     equal the wall meter at the last settlement (within 1e-6);
//   - the whole run is a pure function of the seed: two runs produce
//     bit-identical fingerprints (timings, joules, outcomes).
//
// The seed is a flag so CI can pin it and a developer can reproduce a
// failure exactly: go test -run Chaos -chaos.seed=N ./internal/fault/...
var chaosSeed = flag.Int64("chaos.seed", 1, "seed for the chaos schedule")

const (
	chaosStreams = 8
	chaosSF      = 0.002
)

// chaosDB opens the chaos rig and returns it with the joules attributed
// to the warm-up placement queries — the attribution invariant sums over
// every account ever opened, warm-up included. policy selects the
// admission policy ("" = FIFO); regrant additionally lets completions
// re-offer freed cores to running queries, stressing the pipeline
// restart path under faults.
func chaosDB(t *testing.T, policy string, regrant bool) (*core.DB, float64) {
	t.Helper()
	db, err := core.Open(core.Config{
		Server:      hw.SmallServer(4),
		Objective:   opt.MinTime,
		PageBytes:   16 << 10,
		BlockRows:   4096,
		PoolPages:   16, // small pool: scans keep hitting the faultable disks
		WALBatch:    1,
		RetryMax:    2,
		SchedPolicy: policy,
		ReGrant:     regrant,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := tpch.Generate(chaosSF, 42)
	names := make([]string, 0, len(gen.Tables))
	for name := range gen.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := db.LoadTable(gen.Tables[name]); err != nil {
			t.Fatal(err)
		}
	}
	// Place every table before chaos begins: placement is the recovery
	// checkpoint (LoadTable bypasses the WAL), so an unplaced table would
	// genuinely lose its rows to a crash. A count-only plan places the
	// table without reading a byte.
	warm := 0.0
	for _, name := range names {
		res, err := db.Exec("SELECT COUNT(*) FROM " + name)
		if err != nil {
			t.Fatal(err)
		}
		warm += float64(res.Attributed)
	}
	return db, warm
}

// chaosReference runs the mix fault-free once and reports each query's
// answer (row count) and solo latency, which sizes deadlines and the
// crash instant for the seeded runs.
func chaosReference(t *testing.T) (rows map[string]int64, elapsed map[string]float64) {
	t.Helper()
	db, _ := chaosDB(t, "", false)
	rows = make(map[string]int64)
	elapsed = make(map[string]float64)
	for _, q := range tpch.ThroughputMix() {
		if _, ok := rows[q]; ok {
			continue
		}
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("reference %s: %v", q, err)
		}
		rows[q] = res.RowCount
		elapsed[q] = float64(res.Elapsed)
	}
	return rows, elapsed
}

type chaosQuery struct {
	stream, idx int
	query       string
	closed      bool // closed by the client while queued
	rows        *core.Rows
}

// runChaos executes one seeded chaos run and returns its fingerprint.
// All randomness flows through the injector, so the run is a pure
// function of (seed, crash, policy) and the fingerprint must be
// bit-identical across repeats.
func runChaos(t *testing.T, seed int64, crash bool, policy string, regrant bool, refRows map[string]int64, refElapsed map[string]float64) string {
	t.Helper()
	db, warm := chaosDB(t, policy, regrant)
	inj := fault.NewInjector(seed)
	rng := inj.Rand()

	maxElapsed := 0.0
	for _, e := range refElapsed {
		if e > maxElapsed {
			maxElapsed = e
		}
	}
	// Rough makespan scale: streams*len(mix) statements share the box.
	horizon := maxElapsed * float64(chaosStreams)

	// Device faults: seeded transient windows and limp modes on the data
	// disks. No FailAt here — permanent death is covered by its own test;
	// chaos wants most statements to survive so correctness is checked.
	start := db.Srv.Eng.Now()
	for i, d := range db.Srv.Disks {
		f := inj.Device(fmt.Sprintf("disk%d", i))
		armed := false
		if rng.Float64() < 0.7 {
			f.TransientAt(start+rng.Float64()*horizon, 1+rng.Intn(3))
			armed = true
		}
		if rng.Float64() < 0.5 {
			f.LimpAt(start+rng.Float64()*horizon, 1.5+2*rng.Float64())
			armed = true
		}
		if armed {
			d.SetFault(f)
		}
	}

	// The crash is scheduled before any statement: client-side closes
	// below pump the simulation (Close runs the engine until the closed
	// statement settles), so by the time the last stream is submitted the
	// clock may already be past the crash instant.
	if crash {
		db.CrashAt(start+horizon*0.25, 0.5)
	}

	// Streams: each session issues the whole mix with seeded arrivals;
	// some statements carry deadlines tight enough to expire, some are
	// closed by the client while still queued.
	var queries []chaosQuery
	mix := tpch.ThroughputMix()
	for s := 0; s < chaosStreams; s++ {
		sess := db.Session()
		for qi, q := range mix {
			arrival := start + rng.Float64()*horizon/2
			st, err := sess.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			var rows *core.Rows
			if rng.Float64() < 0.25 {
				// Between 0.3x and 1.3x the solo latency after arrival:
				// some expire queued, some expire running, some finish.
				deadline := arrival + (0.3+rng.Float64())*refElapsed[q]
				rows, err = st.QueryAtDeadline(arrival, deadline)
			} else {
				rows, err = st.QueryAt(arrival)
			}
			if err != nil {
				t.Fatal(err)
			}
			rows.Discard()
			cq := chaosQuery{stream: s, idx: qi, query: q, rows: rows}
			if rng.Float64() < 0.1 {
				cq.closed = true
				if err := rows.Close(); err != nil {
					t.Fatalf("queued close: %v", err)
				}
			}
			queries = append(queries, cq)
		}
	}

	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}

	// Invariant: every statement ended in the reference answer or a typed
	// QueryError.
	var fp strings.Builder
	sum := warm
	for _, cq := range queries {
		label := fmt.Sprintf("s%dq%d", cq.stream, cq.idx)
		err := cq.rows.Err()
		switch {
		case cq.closed:
			if cq.rows.Attributed() != 0 {
				t.Errorf("%s: closed-while-queued statement billed %v J", label, cq.rows.Attributed())
			}
			fmt.Fprintf(&fp, "%s closed\n", label)
		case err != nil:
			var qe *exec.QueryError
			if !errors.As(err, &qe) {
				t.Errorf("%s: untyped error %v", label, err)
			}
			if !errors.Is(err, fault.ErrDeadlineExceeded) &&
				!errors.Is(err, fault.ErrTransientIO) &&
				!errors.Is(err, fault.ErrDeviceFailed) &&
				!errors.Is(err, fault.ErrCrashed) {
				t.Errorf("%s: error outside the fault taxonomy: %v", label, err)
			}
			fmt.Fprintf(&fp, "%s err %v\n", label, err)
		default:
			n, err := cq.rows.RowCount()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if n != refRows[cq.query] {
				t.Errorf("%s: %d rows, reference %d", label, n, refRows[cq.query])
			}
			fmt.Fprintf(&fp, "%s ok %d\n", label, n)
		}
		sum += float64(cq.rows.Attributed())
	}

	// Invariant: the engine drained completely and every grant came back.
	if live := db.Srv.Eng.Live(); live != 0 {
		t.Errorf("%d live process(es) after drain: %v", live, db.Srv.Eng.LiveNames())
	}
	if free := db.Adm.FreeCores(); free != db.Adm.TotalCores {
		t.Errorf("grants leaked: %d free of %d cores", free, db.Adm.TotalCores)
	}
	if crash && db.Crashes() != 1 {
		t.Errorf("crashes = %d, want 1", db.Crashes())
	}

	// After a crash the engine must still answer correctly: re-run the
	// mix's distinct queries once post-recovery.
	if crash {
		for _, q := range []string{tpch.Q1, tpch.Q6} {
			res, err := db.Exec(q)
			if err != nil {
				t.Fatalf("post-recovery %s: %v", q, err)
			}
			if res.RowCount != refRows[q] {
				t.Errorf("post-recovery rows = %d, reference %d", res.RowCount, refRows[q])
			}
			sum += float64(res.Attributed)
		}
	}

	// Invariant: energy attribution telescopes exactly — every statement's
	// share (including dead and deadline-killed ones) plus the
	// unattributed idle floor equals the wall meter.
	if open := db.Attr.Active(); open != 0 {
		t.Errorf("%d account(s) still open after drain", open)
	}
	sum += float64(db.Attr.Unattributed())
	meter := float64(db.Srv.Meter.TotalEnergy(db.Attr.SettledThrough()))
	if math.Abs(sum-meter) > 1e-6 {
		t.Errorf("attribution broke: Σ accounts %v != meter %v (Δ=%g)", sum, meter, sum-meter)
	}

	fmt.Fprintf(&fp, "now %.9f meter %.9f unattributed %.9f\n",
		db.Srv.Eng.Now(), meter, float64(db.Attr.Unattributed()))
	return fp.String()
}

// TestChaosWorkload: the seeded multi-stream run without a crash, run
// twice — outcomes must satisfy every invariant and the two fingerprints
// must be bit-identical.
func TestChaosWorkload(t *testing.T) {
	refRows, refElapsed := chaosReference(t)
	fp1 := runChaos(t, *chaosSeed, false, "", false, refRows, refElapsed)
	fp2 := runChaos(t, *chaosSeed, false, "", false, refRows, refElapsed)
	if fp1 != fp2 {
		t.Fatalf("same seed diverged:\n--- run 1\n%s--- run 2\n%s", fp1, fp2)
	}
	if testing.Verbose() {
		t.Logf("seed %d fingerprint:\n%s", *chaosSeed, fp1)
	}
}

// TestChaosCrashRecovery: the same seeded run with a whole-engine crash
// a quarter of the way through the workload window — in-flight
// statements fail typed, future arrivals re-arm and succeed, recovery
// reproduces the reference answers, and the run stays deterministic.
func TestChaosCrashRecovery(t *testing.T) {
	refRows, refElapsed := chaosReference(t)
	fp1 := runChaos(t, *chaosSeed, true, "", false, refRows, refElapsed)
	fp2 := runChaos(t, *chaosSeed, true, "", false, refRows, refElapsed)
	if fp1 != fp2 {
		t.Fatalf("same seed diverged:\n--- run 1\n%s--- run 2\n%s", fp1, fp2)
	}
	if testing.Verbose() {
		t.Logf("seed %d crash fingerprint:\n%s", *chaosSeed, fp1)
	}
}

// TestChaosWorkloadEDF: the same seeded chaos mix under the EDF policy
// with re-granting enabled — queue-jumping dispatch and mid-run pipeline
// restarts must preserve every lifecycle invariant (typed outcomes, zero
// leaked grants, exact attribution) and stay deterministic.
func TestChaosWorkloadEDF(t *testing.T) {
	refRows, refElapsed := chaosReference(t)
	fp1 := runChaos(t, *chaosSeed, false, "edf", true, refRows, refElapsed)
	fp2 := runChaos(t, *chaosSeed, false, "edf", true, refRows, refElapsed)
	if fp1 != fp2 {
		t.Fatalf("same seed diverged:\n--- run 1\n%s--- run 2\n%s", fp1, fp2)
	}
	if testing.Verbose() {
		t.Logf("seed %d EDF fingerprint:\n%s", *chaosSeed, fp1)
	}
}
