package bench

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"energydb/internal/client"
	"energydb/internal/core"
	"energydb/internal/fault"
	"energydb/internal/hw"
	"energydb/internal/server"
	"energydb/internal/table"
	"energydb/internal/tpch"
	"energydb/internal/wire"
)

// This file is the multi-tenant diurnal workload simulator: N tenants
// with sinusoidal arrival curves (seeded jitter, per-tenant phase) drive
// a mixed workload — deadline-bound interactive scans, analytic joins,
// OLTP-ish inserts, and a daily report over the inserted data — through
// either the embedded Session API or the full server/client wire
// protocol, for a configurable number of simulated days. Per-tenant
// attributed joules roll up into a billing report whose tenant sums plus
// the unattributed idle floor equal the wall meter (the PR 5 invariant,
// extended across the wire), and the headline trajectory (p50/p99
// latency, deadline hit rate, joules/query, idle-floor share) feeds
// BENCH_workload.json so policy PRs are judged against the same traffic.
//
// The driver is deterministic: all arrivals are generated up front from
// the seed, sorted, and submitted from one goroutine; the simulation
// then drains. The same config run embedded and remote produces
// bit-identical result rows (see TestWorkloadEmbeddedRemoteBitIdentity).

// Statement classes.
const (
	classInteractive = "interactive" // Q6-shaped scan, deadline-bound
	classAnalytic    = "analytic"    // Q3 join, no deadline
	classInsert      = "insert"      // append into events
	classReport      = "report"      // daily aggregate over events
)

// WorkloadConfig parameterises the simulator.
type WorkloadConfig struct {
	Tenants int     // default 4
	Days    float64 // simulated days (default 2)
	SF      float64 // TPC-H scale factor for the analytic tables (default 0.005)
	Seed    int64   // arrival-process seed (default 2009)
	Disks   int     // SmallServer disk count (default 2; last one takes the WAL)
	// ArrivalsPerDay is each tenant's mean statement arrivals per
	// simulated day before diurnal modulation (default 48).
	ArrivalsPerDay float64
	// DeadlineSec is the interactive class's latency budget (default 5).
	DeadlineSec float64
	// AnalyticBatchSec, when positive, quantises the analytic class's
	// arrivals up to the next multiple of this window: the heavy join
	// queries arrive in aligned bursts instead of spread across the
	// diurnal curve, so the box races through a batch at high utilisation
	// and sits at the idle floor between windows — the energy-proportional
	// batching shape. Zero (the default) leaves arrivals un-batched.
	// Batched arrivals that would land past the horizon are dropped.
	AnalyticBatchSec float64
	// Remote drives the workload through the wire protocol (a server and
	// one client connection per tenant over net.Pipe); false drives the
	// embedded Session API directly. Same statements either way.
	Remote bool
	// CollectRows keeps every query's result rows and fingerprints them
	// (bit-identity tests); the default discards analytic/interactive
	// results server-side and keeps only counts and energy.
	CollectRows bool
}

func (c *WorkloadConfig) defaults() {
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.Days == 0 {
		c.Days = 2
	}
	if c.SF == 0 {
		c.SF = 0.005
	}
	if c.Seed == 0 {
		c.Seed = 2009
	}
	if c.Disks == 0 {
		c.Disks = 2
	}
	if c.ArrivalsPerDay == 0 {
		c.ArrivalsPerDay = 48
	}
	if c.DeadlineSec == 0 {
		c.DeadlineSec = 5
	}
}

// arrival is one scheduled statement.
type arrival struct {
	at     float64
	tenant int
	seq    int
	class  string
	sql    string
}

// genArrivals builds every tenant's statement schedule up front. Each
// tenant's arrival process is a thinned exponential stream whose rate
// follows a sinusoidal diurnal curve with a per-tenant phase — tenants
// peak at different hours, the consolidation-relevant shape — plus a
// daily report query at each tenant's local midnight.
func genArrivals(cfg WorkloadConfig) []arrival {
	const day = 86400.0
	horizon := cfg.Days * day
	var all []arrival
	for t := 0; t < cfg.Tenants; t++ {
		rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(t)))
		phase := float64(t) / float64(cfg.Tenants)
		base := cfg.ArrivalsPerDay / day // mean rate, 1/s
		peak := base * 1.9               // thinning envelope (1 + amplitude)
		seq := 0
		// Thinned Poisson process: candidate arrivals at the envelope
		// rate, kept with probability rate(t)/peak.
		for at := rng.ExpFloat64() / peak; at < horizon; at += rng.ExpFloat64() / peak {
			frac := at/day - phase
			rate := base * (1 + 0.9*math.Sin(2*math.Pi*frac))
			if rng.Float64()*peak > rate {
				continue
			}
			a := arrival{at: at, tenant: t, seq: seq}
			seq++
			switch p := rng.Float64(); {
			case p < 0.50:
				a.class = classInteractive
				q := 20 + rng.Intn(25) // tenant-varied constant
				a.sql = fmt.Sprintf(`SELECT COUNT(*) AS n, SUM(l_extendedprice) AS s
					FROM lineitem WHERE l_quantity < %d AND l_discount > 0.01`, q)
			case p < 0.80:
				a.class = classInsert
				n := 1 + rng.Intn(4)
				vals := ""
				for i := 0; i < n; i++ {
					if i > 0 {
						vals += ", "
					}
					vals += fmt.Sprintf("(%d, %d, %.6f)", t, int(at/day), rng.Float64()*100)
				}
				a.sql = "INSERT INTO events VALUES " + vals
			default:
				a.class = classAnalytic
				a.sql = tpch.Q3
				if cfg.AnalyticBatchSec > 0 {
					a.at = math.Ceil(at/cfg.AnalyticBatchSec) * cfg.AnalyticBatchSec
					if a.at >= horizon {
						continue
					}
				}
			}
			all = append(all, a)
		}
		// The daily report at the tenant's local midnight.
		for d := 1.0; d <= cfg.Days; d++ {
			all = append(all, arrival{
				at: (d-1)*day + phase*day + day/2, tenant: t, seq: seq, class: classReport,
				sql: `SELECT day, COUNT(*) AS n, SUM(v) AS sv FROM events GROUP BY day ORDER BY day`,
			})
			seq++
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		if all[i].tenant != all[j].tenant {
			return all[i].tenant < all[j].tenant
		}
		return all[i].seq < all[j].seq
	})
	return all
}

// frontend abstracts the two execution paths. One implementation drives
// core directly; the other speaks the wire protocol through the client
// driver, one connection per tenant.
type frontend interface {
	execAt(tenant int, at float64, sql string) error
	// queryAt submits a SELECT on the tenant's session and returns a
	// handle settled at drain time.
	queryAt(tenant int, at, deadline float64, sql string, discard bool) (wquery, error)
	drain() error
	// ledger returns (now, meterJ, unattributedJ, per-tenant attributed).
	// The attributed slice is indexed by tenant and includes inserts.
	ledger() (now, meterJ, unattrJ float64, tenants []float64, err error)
	close()
}

// wquery is a settled statement handle: stats, typed error, optional
// rows.
type wquery interface {
	result() (wire.Result, error)
	collect() (*table.Table, error)
}

// --- embedded frontend ---

type embFrontend struct {
	db       *core.DB
	sessions []*core.Session
	queries  [][]*core.Rows
	inserts  [][]*core.Deferred
}

func newEmbFrontend(db *core.DB, tenants int) *embFrontend {
	f := &embFrontend{db: db,
		queries: make([][]*core.Rows, tenants),
		inserts: make([][]*core.Deferred, tenants)}
	for i := 0; i < tenants; i++ {
		f.sessions = append(f.sessions, db.Session())
	}
	return f
}

func (f *embFrontend) execAt(tenant int, at float64, sql string) error {
	d, err := f.db.ExecAt(at, sql)
	if err != nil {
		return err
	}
	f.inserts[tenant] = append(f.inserts[tenant], d)
	return nil
}

func (f *embFrontend) queryAt(tenant int, at, deadline float64, sql string, discard bool) (wquery, error) {
	st, err := f.sessions[tenant].Prepare(sql)
	if err != nil {
		return nil, err
	}
	rows, err := st.QueryAtDeadline(at, deadline)
	if err != nil {
		return nil, err
	}
	if discard {
		rows.Discard()
	}
	f.queries[tenant] = append(f.queries[tenant], rows)
	return &embQuery{rows: rows}, nil
}

func (f *embFrontend) drain() error { return f.db.Drain() }

func (f *embFrontend) ledger() (float64, float64, float64, []float64, error) {
	meterJ, unattrJ := f.db.Ledger()
	tenants := make([]float64, len(f.sessions))
	for t := range tenants {
		for _, r := range f.queries[t] {
			tenants[t] += float64(r.Attributed())
		}
		for _, d := range f.inserts[t] {
			tenants[t] += float64(d.Attributed())
		}
	}
	return f.db.Srv.Eng.Now(), float64(meterJ), float64(unattrJ), tenants, nil
}

func (f *embFrontend) close() {
	for _, s := range f.sessions {
		s.Close()
	}
}

type embQuery struct{ rows *core.Rows }

func (q *embQuery) result() (wire.Result, error) {
	err := q.rows.Err()
	var res wire.Result
	if st := q.rows.Stats(); st != nil {
		res = wire.Result{
			Elapsed:    float64(st.Elapsed),
			Joules:     float64(st.Joules),
			Attributed: float64(st.Attributed),
			Marginal:   float64(st.Marginal),
			Shared:     float64(st.Shared),
			Wait:       float64(st.Wait),
			Granted:    int64(st.Granted),
			RowCount:   st.RowCount,
			Retries:    int64(q.rows.Retries()),
		}
	}
	return res, err
}

func (q *embQuery) collect() (*table.Table, error) {
	res, err := q.rows.Collect()
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// --- remote frontend (wire protocol over net.Pipe) ---

type remFrontend struct {
	srv      *server.Server
	conns    []*client.DB
	sessions []*client.Session
	system   *client.DB // non-tenant admin conn (schema, drain, meter)
}

func newRemFrontend(db *core.DB, tenants int) (*remFrontend, error) {
	f := &remFrontend{srv: server.New(db)}
	sys, err := client.New(f.srv.Pipe(), "system")
	if err != nil {
		return nil, err
	}
	f.system = sys
	for i := 0; i < tenants; i++ {
		c, err := client.New(f.srv.Pipe(), tenantName(i))
		if err != nil {
			f.close()
			return nil, err
		}
		f.conns = append(f.conns, c)
		s, err := c.Session()
		if err != nil {
			f.close()
			return nil, err
		}
		f.sessions = append(f.sessions, s)
	}
	return f, nil
}

func tenantName(i int) string { return fmt.Sprintf("tenant%02d", i) }

func (f *remFrontend) execAt(tenant int, at float64, sql string) error {
	return f.conns[tenant].ExecAt(at, sql)
}

func (f *remFrontend) queryAt(tenant int, at, deadline float64, sql string, discard bool) (wquery, error) {
	st, err := f.sessions[tenant].Prepare(sql)
	if err != nil {
		return nil, err
	}
	var rows *client.Rows
	if discard {
		rows, err = st.QueryDiscard(at, deadline)
	} else {
		rows, err = st.QueryAtDeadline(at, deadline)
	}
	if err != nil {
		return nil, err
	}
	return &remQuery{rows: rows}, nil
}

func (f *remFrontend) drain() error { return f.system.Drain() }

func (f *remFrontend) ledger() (float64, float64, float64, []float64, error) {
	m, err := f.system.Meter()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	tenants := make([]float64, len(f.conns))
	for _, tb := range m.Tenants {
		for i := range tenants {
			if tb.Tenant == tenantName(i) {
				tenants[i] = tb.AttributedJ
			}
		}
	}
	return m.Now, m.MeterJ, m.UnattributedJ, tenants, nil
}

func (f *remFrontend) close() {
	for _, c := range f.conns {
		c.Close()
	}
	if f.system != nil {
		f.system.Close()
	}
	f.srv.Close()
}

type remQuery struct{ rows *client.Rows }

func (q *remQuery) result() (wire.Result, error) { return q.rows.Result() }

func (q *remQuery) collect() (*table.Table, error) {
	t, _, err := q.rows.Collect()
	return t, err
}

// --- the simulator ---

// ClassStat aggregates one statement class.
type ClassStat struct {
	Class           string  `json:"class"`
	Count           int64   `json:"count"`
	Errors          int64   `json:"errors"` // non-deadline failures
	DeadlineMisses  int64   `json:"deadline_misses"`
	DeadlineHitRate float64 `json:"deadline_hit_rate"` // 1 for classes without deadlines
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	JoulesPerQuery  float64 `json:"joules_per_query"`
}

// TenantReport is one tenant's billing line.
type TenantReport struct {
	Tenant         string  `json:"tenant"`
	Statements     int64   `json:"statements"`
	DeadlineMisses int64   `json:"deadline_misses"`
	AttributedJ    float64 `json:"attributed_joules"`
}

// WorkloadResult is the simulator's outcome: the billing report, the
// headline latency/energy trajectory, and (optionally) result
// fingerprints for bit-identity comparison.
type WorkloadResult struct {
	Tenants int     `json:"tenants"`
	Days    float64 `json:"days"`
	Seed    int64   `json:"seed"`
	Remote  bool    `json:"remote"`

	Seconds        float64 `json:"simulated_seconds"`
	Statements     int64   `json:"statements"`
	MeterJ         float64 `json:"meter_joules"`
	UnattributedJ  float64 `json:"unattributed_joules"`
	SumAttributedJ float64 `json:"sum_attributed_joules"`
	IdleFloorShare float64 `json:"idle_floor_share"` // unattributed / meter

	DeadlineHitRate float64 `json:"deadline_hit_rate"` // interactive class
	P50Ms           float64 `json:"p50_ms"`            // interactive class
	P99Ms           float64 `json:"p99_ms"`
	JoulesPerQuery  float64 `json:"joules_per_query"` // attributed, all SELECTs

	Classes []ClassStat    `json:"classes"`
	Bills   []TenantReport `json:"bills"`

	Fingerprints []string `json:"-"` // per-query result rows, when collected
}

// AttributionError reports the absolute gap between the wall meter and
// Σ tenant bills + idle floor — zero up to float rounding.
func (r *WorkloadResult) AttributionError() float64 {
	return math.Abs(r.MeterJ - (r.SumAttributedJ + r.UnattributedJ))
}

// RunWorkload runs the simulator.
func RunWorkload(cfg WorkloadConfig) (*WorkloadResult, error) {
	cfg.defaults()
	db, err := core.Open(core.Config{
		Server:   hw.SmallServer(cfg.Disks),
		WALBatch: 1,
	})
	if err != nil {
		return nil, err
	}
	for _, t := range tpch.Generate(cfg.SF, cfg.Seed).Tables {
		if err := db.LoadTable(t); err != nil {
			return nil, err
		}
	}

	var fe frontend
	if cfg.Remote {
		f, err := newRemFrontend(db, cfg.Tenants)
		if err != nil {
			return nil, err
		}
		fe = f
	} else {
		fe = newEmbFrontend(db, cfg.Tenants)
	}
	defer fe.close()

	if err := fe.execAt(0, 0, `CREATE TABLE events (tenant BIGINT, day BIGINT, v DOUBLE)`); err != nil {
		return nil, err
	}

	arrivals := genArrivals(cfg)
	type pending struct {
		arrival
		q wquery
	}
	var pend []pending
	for _, a := range arrivals {
		switch a.class {
		case classInsert:
			if err := fe.execAt(a.tenant, a.at, a.sql); err != nil {
				return nil, fmt.Errorf("bench: tenant %d insert at %.0fs: %w", a.tenant, a.at, err)
			}
		default:
			deadline := 0.0
			if a.class == classInteractive {
				deadline = a.at + cfg.DeadlineSec
			}
			q, err := fe.queryAt(a.tenant, a.at, deadline, a.sql, !cfg.CollectRows)
			if err != nil {
				return nil, fmt.Errorf("bench: tenant %d %s at %.0fs: %w", a.tenant, a.class, a.at, err)
			}
			pend = append(pend, pending{arrival: a, q: q})
		}
	}
	if err := fe.drain(); err != nil {
		return nil, err
	}

	res := &WorkloadResult{
		Tenants: cfg.Tenants, Days: cfg.Days, Seed: cfg.Seed, Remote: cfg.Remote,
		Statements: int64(len(arrivals)),
	}
	stats := map[string]*classAgg{}
	bills := make([]TenantReport, cfg.Tenants)
	for t := range bills {
		bills[t].Tenant = tenantName(t)
	}
	var sumQueryJ float64
	var selects int64
	for _, p := range pend {
		// Collect rows before reading stats: the client driver's Result
		// consumes any remaining batches while draining the stream.
		var fp string
		if cfg.CollectRows {
			if tab, cerr := p.q.collect(); cerr == nil {
				fp = FingerprintTable(tab)
			}
		}
		r, err := p.q.result()
		agg := stats[p.class]
		if agg == nil {
			agg = &classAgg{}
			stats[p.class] = agg
		}
		agg.count++
		bills[p.tenant].Statements++
		switch {
		case err == nil:
			agg.latencies = append(agg.latencies, r.Elapsed*1000)
			agg.joules += r.Attributed
			sumQueryJ += r.Attributed
			selects++
		case errors.Is(err, fault.ErrDeadlineExceeded):
			agg.misses++
			bills[p.tenant].DeadlineMisses++
			agg.joules += r.Attributed // a missed query's joules still count
		default:
			agg.errors++
			return nil, fmt.Errorf("bench: tenant %d %s at %.0fs failed: %w",
				p.tenant, p.class, p.at, err)
		}
		if cfg.CollectRows && err == nil {
			res.Fingerprints = append(res.Fingerprints, fp)
		}
	}
	for t := range arrivals {
		if arrivals[t].class == classInsert {
			bills[arrivals[t].tenant].Statements++
		}
	}

	now, meterJ, unattrJ, tenantJ, err := fe.ledger()
	if err != nil {
		return nil, err
	}
	res.Seconds = now
	res.MeterJ = meterJ
	res.UnattributedJ = unattrJ
	for t := range bills {
		bills[t].AttributedJ = tenantJ[t]
		res.SumAttributedJ += tenantJ[t]
	}
	res.Bills = bills
	if meterJ > 0 {
		res.IdleFloorShare = unattrJ / meterJ
	}
	if selects > 0 {
		res.JoulesPerQuery = sumQueryJ / float64(selects)
	}

	for _, class := range []string{classInteractive, classAnalytic, classReport, classInsert} {
		agg := stats[class]
		if agg == nil {
			continue
		}
		cs := ClassStat{
			Class: class, Count: agg.count, Errors: agg.errors,
			DeadlineMisses: agg.misses,
			P50Ms:          percentile(agg.latencies, 0.50),
			P99Ms:          percentile(agg.latencies, 0.99),
		}
		cs.DeadlineHitRate = 1
		if class == classInteractive && agg.count > 0 {
			cs.DeadlineHitRate = 1 - float64(agg.misses)/float64(agg.count)
		}
		if n := agg.count - agg.misses - agg.errors; n > 0 {
			cs.JoulesPerQuery = agg.joules / float64(n)
		}
		res.Classes = append(res.Classes, cs)
		if class == classInteractive {
			res.DeadlineHitRate = cs.DeadlineHitRate
			res.P50Ms, res.P99Ms = cs.P50Ms, cs.P99Ms
		}
	}
	// Insert arrivals have no wquery; count them as a class.
	var inserts int64
	for _, a := range arrivals {
		if a.class == classInsert {
			inserts++
		}
	}
	res.Classes = append(res.Classes, ClassStat{Class: classInsert, Count: inserts, DeadlineHitRate: 1})
	return res, nil
}

type classAgg struct {
	count, errors, misses int64
	latencies             []float64
	joules                float64
}

// percentile returns the p-quantile of xs (nearest-rank), 0 when empty.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// FingerprintTable renders a result table with full float bits, the
// bit-identity yardstick shared by the workload and wire tests.
func FingerprintTable(tab *table.Table) string {
	if tab == nil {
		return "<nil>"
	}
	var b []byte
	for _, c := range tab.Schema.Cols {
		b = append(b, fmt.Sprintf("%s:%d|", c.Name, c.Type)...)
	}
	b = append(b, '\n')
	for i := 0; i < tab.Rows(); i++ {
		for c := range tab.Schema.Cols {
			v := tab.Column(c)
			switch {
			case v.I != nil:
				b = append(b, fmt.Sprintf("%d|", v.I[i])...)
			case v.F != nil:
				b = append(b, fmt.Sprintf("%x|", math.Float64bits(v.F[i]))...)
			default:
				b = append(b, fmt.Sprintf("%s|", v.S[i])...)
			}
		}
		b = append(b, '\n')
	}
	return string(b)
}

// Render prints the billing report and trajectory.
func (r *WorkloadResult) Render() string {
	mode := "embedded"
	if r.Remote {
		mode = "wire protocol"
	}
	t := NewTable(fmt.Sprintf("Diurnal multi-tenant workload — %d tenants × %.3g days via %s (seed %d)",
		r.Tenants, r.Days, mode, r.Seed),
		"tenant", "statements", "deadline misses", "attributed(J)")
	for _, b := range r.Bills {
		t.Addf(b.Tenant, b.Statements, b.DeadlineMisses, b.AttributedJ)
	}
	t.Addf("idle floor", "", "", r.UnattributedJ)
	t.Add("")
	t.Add(fmt.Sprintf("wall meter %.6g J   Σ bills + idle floor %.6g J (gap %.2g J)   idle-floor share %.1f%%",
		r.MeterJ, r.SumAttributedJ+r.UnattributedJ, r.AttributionError(), 100*r.IdleFloorShare))
	t.Add(fmt.Sprintf("interactive: p50 %.3g ms  p99 %.3g ms  deadline hit rate %.3f   %.4g J/query over all SELECTs",
		r.P50Ms, r.P99Ms, r.DeadlineHitRate, r.JoulesPerQuery))
	for _, c := range r.Classes {
		t.Add(fmt.Sprintf("  %-11s n=%-5d p50 %.3g ms  p99 %.3g ms  misses %d", c.Class, c.Count, c.P50Ms, c.P99Ms, c.DeadlineMisses))
	}
	return t.String()
}
