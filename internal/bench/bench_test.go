package bench

import (
	"strings"
	"testing"
)

// These tests are the acceptance criteria from DESIGN.md §3: they assert
// the *shape* of every reproduced figure and ablation, not absolute
// numbers (our substrate is a simulator, not the authors' testbed).

func TestFigure2Shape(t *testing.T) {
	r, err := RunFigure2(Figure2Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Compressed is materially faster (paper: 1.82x)...
	if sp := r.Speedup(); sp < 1.2 || sp > 2.5 {
		t.Fatalf("speedup = %.2f, want in [1.2, 2.5]", sp)
	}
	// ...but costs more energy (paper: 1.44x).
	if er := r.EnergyRatio(); er < 1.1 {
		t.Fatalf("energy ratio = %.2f, want >= 1.1", er)
	}
	// Uncompressed is disk-bound; compression shifts the bottleneck
	// toward the CPU (the paper's compressed point was near-balanced:
	// 5.1s CPU of 5.5s total; our substrate lands mixed-bound).
	rawFrac := r.Uncompressed.CPUSec / r.Uncompressed.TotalSec
	lzFrac := r.Compressed.CPUSec / r.Compressed.TotalSec
	if rawFrac > 0.35 {
		t.Fatalf("uncompressed scan should be disk-bound: cpu fraction %.2f", rawFrac)
	}
	if lzFrac < 0.45 || lzFrac < 1.8*rawFrac {
		t.Fatalf("compression should shift the bottleneck to CPU: %.2f -> %.2f", rawFrac, lzFrac)
	}
	// Compression is real.
	if r.Compressed.Ratio > 0.7 || r.Compressed.Ratio < 0.1 {
		t.Fatalf("compression ratio = %.2f", r.Compressed.Ratio)
	}
	// The metered joules match the paper's power arithmetic (both models
	// integrate 90 W busy CPU + 5 W flash).
	for _, run := range []Figure2Run{r.Uncompressed, r.Compressed} {
		if diff := run.Joules/run.PaperModel - 1; diff < -0.05 || diff > 0.05 {
			t.Fatalf("%s: metered %.3f J vs paper arithmetic %.3f J", run.Name, run.Joules, run.PaperModel)
		}
	}
	if !strings.Contains(r.Render(), "Figure 2") {
		t.Fatal("render broken")
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-engine sweep")
	}
	r, err := RunFigure1(Figure1Config{SF: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Time decreases monotonically with disks (more spindles never hurt).
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Seconds > r.Points[i-1].Seconds*1.02 {
			t.Fatalf("time not decreasing: %v", r.Points)
		}
	}
	// Diminishing returns: the relative gain of each disk doubling shrinks.
	g1 := r.Points[0].Seconds / r.Points[1].Seconds // 36 -> 66
	g3 := r.Points[2].Seconds / r.Points[3].Seconds // 108 -> 204
	if g1 <= g3 {
		t.Fatalf("returns not diminishing: 36->66 %.2fx vs 108->204 %.2fx", g1, g3)
	}
	// EE peaks at an interior point — the paper's headline claim — and
	// that point is 66 disks, as in the paper.
	if r.BestIdx == 0 || r.BestIdx == len(r.Points)-1 {
		t.Fatalf("EE peak at edge point %d disks:\n%s", r.Best().Disks, r.Render())
	}
	if r.Best().Disks != 66 {
		t.Fatalf("EE peak at %d disks, want 66:\n%s", r.Best().Disks, r.Render())
	}
	// The efficiency-vs-performance tradeoff exists and points the right
	// way (paper: +14% EE for -45% performance; our simulator's magnitudes
	// differ, see EXPERIMENTS.md).
	if r.EEGainVsFastest() < 0.05 {
		t.Fatalf("EE gain vs fastest = %.2f, want >= 0.05", r.EEGainVsFastest())
	}
	if d := r.PerfDropVsFastest(); d < 0.10 || d > 0.70 {
		t.Fatalf("perf drop vs fastest = %.2f, want in [0.10, 0.70]", d)
	}
	// Workload-level accounting is lossless: the 24 streams cover each
	// run wall-to-wall, so per-query attributed joules sum to the wall
	// meter at every disk count.
	for _, p := range r.Points {
		if diff := p.AttributedJ - p.Joules; diff < -1e-6*p.Joules || diff > 1e-6*p.Joules {
			t.Fatalf("%d disks: attributed %.6f J vs meter %.6f J", p.Disks, p.AttributedJ, p.Joules)
		}
	}
}

func TestStreamsShape(t *testing.T) {
	r, err := RunStreams(StreamsConfig{SF: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Streams) != 8 || r.Admission.Completed != 8*6 {
		t.Fatalf("streams/queries: %d/%d", len(r.Streams), r.Admission.Completed)
	}
	// Attribution is lossless across the concurrent sessions.
	if e := r.AttributionError(); e > 1e-6 {
		t.Fatalf("attribution gap = %.3g", e)
	}
	// Every stream did real work and paid a real bill, part marginal,
	// part idle floor.
	for _, s := range r.Streams {
		if s.Rows == 0 || s.AttributedJ <= 0 || s.MarginalJ <= 0 || s.MarginalJ >= s.AttributedJ {
			t.Fatalf("stream bill: %+v", s)
		}
	}
	// 8 streams on the SmallServer's 8 cores: admission never
	// oversubscribes.
	if r.Admission.PeakActive > 8 {
		t.Fatalf("peak active = %d on 8 cores", r.Admission.PeakActive)
	}
}

func TestJoinFlipShape(t *testing.T) {
	r, err := RunJoinFlip()
	if err != nil {
		t.Fatal(err)
	}
	// At datasheet DRAM power both objectives pick hash join.
	first := r.Points[0]
	if first.TimeAlgo != "hash" || first.EnergyAlgo != "hash" {
		t.Fatalf("datasheet point: %+v", first)
	}
	// The flip exists somewhere in the sweep, is energy-rational under
	// the model, and never affects the time objective.
	if r.FlipPrice == 0 {
		t.Fatal("energy objective never flipped to nested-loop")
	}
	for _, p := range r.Points {
		if p.TimeAlgo != "hash" {
			t.Fatalf("time objective moved at %v W/byte", p.DRAMWattPerByte)
		}
		if p.EnergyAlgo == "nl" && p.NLJoules >= p.HashJoules {
			t.Fatalf("flip not energy-rational at %v: nl %.3f vs hash %.3f",
				p.DRAMWattPerByte, p.NLJoules, p.HashJoules)
		}
	}
}

func TestConsolidationShape(t *testing.T) {
	r, err := RunConsolidation()
	if err != nil {
		t.Fatal(err)
	}
	base := r.Points[0] // window 0
	best := base
	for _, p := range r.Points[1:] {
		// Batching costs latency...
		if p.MeanLatency <= base.MeanLatency {
			t.Fatalf("window %v did not raise latency", p.WindowSec)
		}
		if p.DiskJoules < best.DiskJoules {
			best = p
		}
	}
	// ...and some window saves meaningful disk energy (>= 15%).
	if best.DiskJoules > base.DiskJoules*0.85 {
		t.Fatalf("no window saved energy: base %.1f best %.1f", base.DiskJoules, best.DiskJoules)
	}
}

func TestBufferPolicyShape(t *testing.T) {
	r, err := RunBufferPolicy()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BufferPolicyPoint{}
	for _, p := range r.Points {
		byName[p.Policy] = p
	}
	// The energy-aware policy must spend less disk energy than LRU and
	// CLOCK (it protects expensive disk pages).
	ea := byName["energy"]
	for _, rival := range []string{"lru", "clock"} {
		if ea.DiskJoules >= byName[rival].DiskJoules {
			t.Fatalf("energy policy disk J %.1f not below %s %.1f",
				ea.DiskJoules, rival, byName[rival].DiskJoules)
		}
	}
}

func TestGroupCommitShape(t *testing.T) {
	r, err := RunGroupCommit()
	if err != nil {
		t.Fatal(err)
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.JoulesPerCommit >= first.JoulesPerCommit {
		t.Fatalf("batching did not cut J/commit: %.4f -> %.4f",
			first.JoulesPerCommit, last.JoulesPerCommit)
	}
	if last.MeanLatency <= first.MeanLatency {
		t.Fatalf("batching did not raise latency: %.4f -> %.4f",
			first.MeanLatency, last.MeanLatency)
	}
	if last.Flushes >= first.Flushes {
		t.Fatal("batching did not reduce flushes")
	}
}

func TestClusterShape(t *testing.T) {
	r, err := RunCluster()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	migrations := map[string]int64{}
	for _, p := range r.Results {
		byName[p.Policy] = p.TotalJoules
		migrations[p.Policy] = p.Migrations
	}
	if byName["consolidate"] >= byName["spread"] {
		t.Fatal("consolidation did not save energy")
	}
	if byName["sticky"] >= byName["spread"] {
		t.Fatal("sticky did not save energy")
	}
	if migrations["sticky"] >= migrations["consolidate"] {
		t.Fatal("sticky should migrate less than consolidate")
	}
}

func TestProportionalityShape(t *testing.T) {
	r, err := RunProportionality()
	if err != nil {
		t.Fatal(err)
	}
	// 2008 hardware: far from proportional (the paper's complaint), with
	// EE rising with utilisation (peak efficiency only at peak load).
	if r.Index > 0.8 {
		t.Fatalf("model too proportional for 2008 hardware: %.2f", r.Index)
	}
	if r.DynamicRange > 0.6 || r.DynamicRange <= 0 {
		t.Fatalf("dynamic range = %.2f", r.DynamicRange)
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Efficiency < r.Points[i-1].Efficiency {
			t.Fatal("EE should rise with utilisation on non-proportional hardware")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.Addf(1, 2.5)
	tb.Add("x")
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "2.5") {
		t.Fatalf("table render:\n%s", out)
	}
}
