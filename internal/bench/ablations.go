package bench

import (
	"fmt"
	"math"
	"math/rand"

	"energydb/internal/buffer"
	"energydb/internal/cluster"
	"energydb/internal/energy"
	"energydb/internal/exec"
	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/sched"
	"energydb/internal/sim"
	"energydb/internal/storage"
	"energydb/internal/tpch"
	"energydb/internal/wal"
)

// ---------------------------------------------------------------------------
// E3 — §4.1: the join-algorithm flip under memory power pricing.

// JoinFlipPoint is one DRAM-power price point.
type JoinFlipPoint struct {
	DRAMWattPerByte float64
	TimeAlgo        string
	EnergyAlgo      string
	HashJoules      float64 // energy model's joules for the hash plan
	NLJoules        float64 // and for the NL plan
}

// JoinFlipResult sweeps the memory power price until the energy objective
// abandons hash join.
type JoinFlipResult struct {
	Points               []JoinFlipPoint
	FlipPrice            float64 // first price at which the energy objective picks NL (0 = never)
	DatasheetWattPerByte float64
}

// RunJoinFlip prices DRAM holding power upward and records the optimizer's
// join-algorithm choice under both objectives.
func RunJoinFlip() (*JoinFlipResult, error) {
	gen := tpch.Generate(0.02, 7)
	eng := sim.NewEngine()
	meter := energy.NewMeter()
	devs := make([]storage.BlockDevice, 3)
	for i := range devs {
		devs[i] = hw.NewSSD(eng, meter, fmt.Sprintf("ssd%d", i), hw.FlashSSD2008())
	}
	vol := storage.NewVolume("data", storage.Striped, 16<<10, devs)

	cat := opt.NewCatalog()
	for _, name := range []string{"orders", "nation"} {
		t := gen.Tables[name]
		st, err := exec.PlaceColumnMajor(t, vol, 1, 8192, tpch.RawCodecs(t.Schema))
		if err != nil {
			return nil, err
		}
		cat.Add(name, &opt.Placement{
			Variants: []opt.Variant{{Name: "col/raw", ST: st}},
			Stats:    opt.Analyze(t),
		})
	}
	mkQuery := func() *opt.Query {
		l := opt.ColRef{Table: "o", Col: "o_custkey"}
		r := opt.ColRef{Table: "n", Col: "n_nationkey"}
		out := opt.ColRef{Table: "o", Col: "o_orderkey"}
		return &opt.Query{
			Tables:  []string{"o", "n"},
			Rels:    map[string]string{"o": "orders", "n": "nation"},
			Preds:   []opt.PredIR{{Left: l, Op: exec.Eq, Right: r, IsJoin: true}},
			Outputs: []opt.OutputIR{{Expr: &opt.ExprIR{Col: &out}, As: "k"}},
			Limit:   -1,
		}
	}
	ssd := hw.FlashSSD2008()
	baseEnv := opt.Env{
		CPUFreqHz: 2.4e9, Cores: 1,
		ScanBW: 3 * ssd.ReadBW, PageLatency: ssd.ReadLatency, PageBytes: 16 << 10,
		CPUWattPerCore: 90, StorageWatt: 5,
		Costs: exec.DefaultCosts(),
	}

	res := &JoinFlipResult{DatasheetWattPerByte: 1.3e-9}
	for _, price := range []float64{1.3e-9, 1e-6, 1e-3, 1e-1, 1, 10} {
		env := baseEnv
		env.DRAMWattPerByte = price
		tPlan, err := opt.Optimize(mkQuery(), cat, &env, opt.MinTime)
		if err != nil {
			return nil, err
		}
		ePlan, err := opt.Optimize(mkQuery(), cat, &env, opt.MinEnergy)
		if err != nil {
			return nil, err
		}
		pt := JoinFlipPoint{
			DRAMWattPerByte: price,
			TimeAlgo:        joinAlgoOf(tPlan.Root),
			EnergyAlgo:      joinAlgoOf(ePlan.Root),
		}
		pt.HashJoules, pt.NLJoules = joinCostsUnder(mkQuery(), cat, &env)
		res.Points = append(res.Points, pt)
		if res.FlipPrice == 0 && pt.EnergyAlgo == "nl" {
			res.FlipPrice = price
		}
	}
	return res, nil
}

func joinAlgoOf(n opt.PhysNode) string {
	switch v := n.(type) {
	case *opt.PJoin:
		return v.Algo
	case *opt.PFilter:
		return joinAlgoOf(v.In)
	case *opt.PProject:
		return joinAlgoOf(v.In)
	case *opt.PAgg:
		return joinAlgoOf(v.In)
	case *opt.PSort:
		return joinAlgoOf(v.In)
	case *opt.PLimit:
		return joinAlgoOf(v.In)
	default:
		return ""
	}
}

// joinCostsUnder reports the model joules of the best hash and best NL
// plan by optimizing under each objective and reading plan costs.
func joinCostsUnder(q *opt.Query, cat *opt.Catalog, env *opt.Env) (hashJ, nlJ float64) {
	tPlan, err := opt.Optimize(q, cat, env, opt.MinTime)
	if err == nil && joinAlgoOf(tPlan.Root) == "hash" {
		hashJ = tPlan.Cost().Joules
	}
	ePlan, err := opt.Optimize(q, cat, env, opt.MinEnergy)
	if err == nil {
		if joinAlgoOf(ePlan.Root) == "nl" {
			nlJ = ePlan.Cost().Joules
		} else if hashJ == 0 {
			hashJ = ePlan.Cost().Joules
		}
	}
	return hashJ, nlJ
}

// Render prints the E3 sweep.
func (r *JoinFlipResult) Render() string {
	t := NewTable("E3 — §4.1 join flip: optimizer choice vs DRAM holding-power price",
		"W/byte", "time objective", "energy objective", "hash model J", "nl model J")
	for _, p := range r.Points {
		t.Addf(fmt.Sprintf("%.1e", p.DRAMWattPerByte), p.TimeAlgo, p.EnergyAlgo, p.HashJoules, p.NLJoules)
	}
	t.Add("")
	if r.FlipPrice > 0 {
		t.Add(fmt.Sprintf("energy objective flips to nested-loop at %.1e W/byte (datasheet: %.1e, %.0fx above)",
			r.FlipPrice, r.DatasheetWattPerByte, r.FlipPrice/r.DatasheetWattPerByte))
	} else {
		t.Add("energy objective never flipped in the swept range")
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// E4 — §4.2: admission batching consolidates disk activity in time.

// ConsolidationPoint is one batching-window setting.
type ConsolidationPoint struct {
	WindowSec   float64
	DiskJoules  float64
	SpinDowns   int64
	MeanLatency float64
}

// ConsolidationResult sweeps the batching window.
type ConsolidationResult struct{ Points []ConsolidationPoint }

// RunConsolidation submits sparse scan jobs against a spin-down-capable
// disk under several admission windows (the Admission controller's
// batching mode, two job slots).
func RunConsolidation() (*ConsolidationResult, error) {
	res := &ConsolidationResult{}
	for _, window := range []float64{0, 30, 90, 180} {
		eng := sim.NewEngine()
		meter := energy.NewMeter()
		d := hw.NewDisk(eng, meter, "d0", hw.Cheetah15K())
		d.SpinDownAfter = 15
		adm := sched.NewAdmission(eng, 2, window)
		rng := rand.New(rand.NewSource(11))
		at := 0.0
		for i := 0; i < 60; i++ {
			at += 4 + rng.Float64()*8
			off := int64(i%40) * 50 * 1e6
			eng.At(at, "arrival", func() {
				adm.Submit("scan", 1, func(p *sim.Proc, granted int) { d.Read(p, off, 4*1e6) })
			})
		}
		if err := eng.Run(); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ConsolidationPoint{
			WindowSec:   window,
			DiskJoules:  float64(meter.ComponentEnergy("d0", energy.Seconds(eng.Now()))),
			SpinDowns:   d.Stats().SpinDowns,
			MeanLatency: adm.Stats().MeanLatency(),
		})
	}
	return res, nil
}

// Render prints the E4 sweep.
func (r *ConsolidationResult) Render() string {
	t := NewTable("E4 — §4.2 batching window vs disk energy (sparse arrivals, 15s spin-down)",
		"window(s)", "disk energy(J)", "spin-downs", "mean latency(s)")
	for _, p := range r.Points {
		t.Addf(p.WindowSec, p.DiskJoules, p.SpinDowns, p.MeanLatency)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// E5 — §4.3: buffer replacement policies under heterogeneous re-fetch energy.

// BufferPolicyPoint is one policy's outcome.
type BufferPolicyPoint struct {
	Policy     string
	Misses     int64
	DiskJoules float64
	SSDJoules  float64
}

// BufferPolicyResult compares replacement policies on a mixed-device
// working set.
type BufferPolicyResult struct{ Points []BufferPolicyPoint }

// RunBufferPolicy replays a Zipf-ish trace touching a hot set on a 15K
// disk and a scan set on flash under each policy; the energy-aware policy
// should protect the expensive disk pages.
func RunBufferPolicy() (*BufferPolicyResult, error) {
	mk := map[string]func() buffer.Policy{
		"lru":    buffer.NewLRU,
		"clock":  buffer.NewClock,
		"2q":     buffer.NewTwoQ,
		"energy": buffer.NewEnergyAware,
	}
	res := &BufferPolicyResult{}
	for _, name := range []string{"lru", "clock", "2q", "energy"} {
		eng := sim.NewEngine()
		meter := energy.NewMeter()
		disk := hw.NewDisk(eng, meter, "disk", hw.Cheetah15K())
		ssd := hw.NewSSD(eng, meter, "ssd", hw.FlashSSD2008())
		diskVol := storage.NewVolume("dv", storage.Striped, 64<<10, []storage.BlockDevice{disk})
		ssdVol := storage.NewVolume("sv", storage.Striped, 64<<10, []storage.BlockDevice{ssd})
		pool := buffer.NewPool(64, mk[name]())

		spec := hw.Cheetah15K()
		diskJ := (spec.AvgSeek + spec.RotLatency + 64e3/spec.SeqReadBW) * float64(spec.ActiveWatts)
		ssdSpec := hw.FlashSSD2008()
		ssdJ := (ssdSpec.ReadLatency + 64e3/ssdSpec.ReadBW) * float64(ssdSpec.ActiveWatts)

		rng := rand.New(rand.NewSource(3))
		eng.Go("trace", func(p *sim.Proc) {
			get := func(file int32, page int64, vol *storage.Volume, joules float64) {
				k := buffer.PageKey{File: file, Page: page}
				pool.Get(p, k, func(pp *sim.Proc) error {
					vol.ReadPage(pp, page)
					pool.SetRefetchCost(k, joules)
					return nil
				})
				pool.Unpin(k)
			}
			for i := 0; i < 4000; i++ {
				if rng.Float64() < 0.5 {
					// Hot disk-resident set of 40 pages, Zipf-ish skew.
					pg := int64(math.Floor(40 * math.Pow(rng.Float64(), 2)))
					get(1, pg, diskVol, diskJ)
				} else {
					// Flash-resident set of 200 pages, uniform.
					get(2, rng.Int63n(200), ssdVol, ssdJ)
				}
			}
		})
		if err := eng.Run(); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, BufferPolicyPoint{
			Policy:     name,
			Misses:     pool.Stats().Misses,
			DiskJoules: float64(meter.ComponentEnergy("disk", energy.Seconds(eng.Now()))),
			SSDJoules:  float64(meter.ComponentEnergy("ssd", energy.Seconds(eng.Now()))),
		})
	}
	return res, nil
}

// Render prints the E5 comparison.
func (r *BufferPolicyResult) Render() string {
	t := NewTable("E5 — §4.3 buffer replacement under heterogeneous re-fetch energy (64-frame pool)",
		"policy", "misses", "disk energy(J)", "ssd energy(J)")
	for _, p := range r.Points {
		t.Addf(p.Policy, p.Misses, p.DiskJoules, p.SSDJoules)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// E6 — §5.2: group-commit batching factor.

// GroupCommitPoint is one batching factor's outcome.
type GroupCommitPoint struct {
	Batch           int
	JoulesPerCommit float64
	MeanLatency     float64
	Flushes         int64
}

// GroupCommitResult sweeps the WAL batching factor.
type GroupCommitResult struct{ Points []GroupCommitPoint }

// RunGroupCommit drives a Poisson-ish commit stream at several batching
// factors on a dedicated log disk.
func RunGroupCommit() (*GroupCommitResult, error) {
	res := &GroupCommitResult{}
	for _, batch := range []int{1, 4, 16, 64} {
		eng := sim.NewEngine()
		meter := energy.NewMeter()
		d := hw.NewDisk(eng, meter, "log", hw.Cheetah15K())
		l := wal.NewLog(eng, d, batch, 0.05)
		rng := rand.New(rand.NewSource(13))
		const n = 400
		at := 0.0
		for i := 0; i < n; i++ {
			at += rng.Float64() * 0.002
			start := at
			eng.Go(fmt.Sprintf("txn%d", i), func(p *sim.Proc) {
				p.Sleep(start)
				l.Commit(p, 300)
			})
		}
		if err := eng.Run(); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, GroupCommitPoint{
			Batch:           batch,
			JoulesPerCommit: float64(meter.ComponentEnergy("log", energy.Seconds(eng.Now()))) / n,
			MeanLatency:     l.Stats().MeanLatency(),
			Flushes:         l.Stats().Flushes,
		})
	}
	return res, nil
}

// Render prints the E6 sweep.
func (r *GroupCommitResult) Render() string {
	t := NewTable("E6 — §5.2 group-commit batching factor (400 commits, dedicated 15K log disk)",
		"batch", "J/commit", "mean latency(s)", "flushes")
	for _, p := range r.Points {
		t.Addf(p.Batch, p.JoulesPerCommit, p.MeanLatency, p.Flushes)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// E7 — §2.4: cluster consolidation.

// ClusterResult compares placement policies on a diurnal tenant trace.
type ClusterResult struct{ Results []cluster.Result }

// RunCluster evaluates spread / consolidate / sticky on the same trace.
func RunCluster() (*ClusterResult, error) {
	cfg := cluster.Config{
		Nodes: 10,
		Spec: cluster.NodeSpec{
			Cores: 8, IdleWatts: 200, PerCoreWatts: 12, OffWatts: 5,
		},
		EpochSeconds:      3600,
		MigrationJPerByte: 30e-9,
	}
	rng := rand.New(rand.NewSource(21))
	tenants := make([]cluster.Tenant, 16)
	const epochs = 72
	for i := range tenants {
		load := make([]float64, epochs)
		phase := rng.Float64() * 2 * math.Pi
		for e := range load {
			day := 0.5 + 0.45*math.Sin(2*math.Pi*float64(e)/24+phase)
			load[e] = 0.2 + 1.8*day*rng.Float64()
		}
		tenants[i] = cluster.Tenant{
			Name:      fmt.Sprintf("tenant%02d", i),
			DataBytes: int64(2+rng.Intn(30)) << 30,
			Load:      load,
		}
	}
	out := &ClusterResult{}
	for _, pol := range []cluster.Policy{
		cluster.Spread{},
		cluster.Consolidate{Headroom: 0.1},
		cluster.Sticky{Headroom: 0.1},
	} {
		r, err := cluster.Evaluate(cfg, tenants, pol)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, r)
	}
	return out, nil
}

// Render prints the E7 comparison.
func (r *ClusterResult) Render() string {
	t := NewTable("E7 — §2.4 cluster consolidation over a 72h diurnal trace (10 nodes, 16 tenants)",
		"policy", "total energy(MJ)", "migration(MJ)", "migrations", "mean nodes on", "violations")
	for _, p := range r.Results {
		t.Addf(p.Policy, p.TotalJoules/1e6, p.MigrationJoules/1e6, p.Migrations, p.MeanNodesOn, p.Violations)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// E8 — §2.3: energy proportionality of the modelled server.

// ProportionalityPoint is one utilisation sample.
type ProportionalityPoint struct {
	Utilization float64
	PowerW      float64
	Efficiency  float64 // work per joule at this load
}

// ProportionalityResult measures the DL785 model's power curve.
type ProportionalityResult struct {
	Points       []ProportionalityPoint
	Index        float64 // 1.0 = perfectly proportional
	DynamicRange float64
}

// RunProportionality loads the DL785 CPU complex at several utilisation
// levels and integrates power.
func RunProportionality() (*ProportionalityResult, error) {
	res := &ProportionalityResult{}
	var pts []energy.UtilPoint
	for _, util := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0} {
		srv := hw.NewServer(hw.DL785(66))
		const window = 10.0
		busyCores := int(math.Round(util * float64(srv.CPU.Cores())))
		for c := 0; c < busyCores; c++ {
			srv.Eng.Go(fmt.Sprintf("load%d", c), func(p *sim.Proc) {
				srv.CPU.Use(p, window*srv.CPU.Spec().FreqHz)
			})
		}
		if err := srv.Eng.Run(); err != nil {
			return nil, err
		}
		if err := srv.Eng.RunUntil(window); err != nil {
			return nil, err
		}
		joules := float64(srv.Meter.TotalEnergy(energy.Seconds(window)))
		power := joules / window
		work := float64(busyCores) * window
		res.Points = append(res.Points, ProportionalityPoint{
			Utilization: util,
			PowerW:      power,
			Efficiency:  work / joules,
		})
		pts = append(pts, energy.UtilPoint{Utilization: util, Power: energy.Watts(power)})
	}
	res.Index = energy.ProportionalityIndex(pts)
	srv := hw.NewServer(hw.DL785(66))
	res.DynamicRange = srv.DynamicRange()
	return res, nil
}

// Render prints the E8 curve.
func (r *ProportionalityResult) Render() string {
	t := NewTable("E8 — §2.3 energy proportionality of the DL785 model (66 disks)",
		"utilization", "power(W)", "EE(core-s/J)")
	for _, p := range r.Points {
		t.Addf(p.Utilization, p.PowerW, p.Efficiency)
	}
	t.Add("")
	t.Add(fmt.Sprintf("proportionality index = %.2f (ideal 1.0)   dynamic range = %.2f",
		r.Index, r.DynamicRange))
	return t.String()
}
