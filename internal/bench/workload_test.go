package bench

import (
	"testing"
)

// TestWorkloadBilling: the simulator's billing report closes — the wall
// meter equals Σ per-tenant attributed joules plus the idle floor — and
// the headline metrics are populated and sane.
func TestWorkloadBilling(t *testing.T) {
	res, err := RunWorkload(WorkloadConfig{
		Tenants: 3, Days: 0.25, ArrivalsPerDay: 64, Seed: 7, Remote: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Statements < 10 {
		t.Fatalf("only %d statements over the horizon", res.Statements)
	}
	if gap := res.AttributionError(); gap > 1e-6 {
		t.Fatalf("billing does not close: meter %.6f, Σ bills %.6f, idle %.6f (gap %.2e)",
			res.MeterJ, res.SumAttributedJ, res.UnattributedJ, gap)
	}
	if res.MeterJ <= 0 || res.UnattributedJ <= 0 {
		t.Fatalf("meter %.3f / idle floor %.3f, want both > 0", res.MeterJ, res.UnattributedJ)
	}
	if res.IdleFloorShare <= 0 || res.IdleFloorShare >= 1 {
		t.Fatalf("idle-floor share %.3f outside (0,1)", res.IdleFloorShare)
	}
	if res.DeadlineHitRate < 0 || res.DeadlineHitRate > 1 {
		t.Fatalf("deadline hit rate %.3f", res.DeadlineHitRate)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms {
		t.Fatalf("latency percentiles p50=%.3f p99=%.3f", res.P50Ms, res.P99Ms)
	}
	if res.JoulesPerQuery <= 0 {
		t.Fatalf("joules/query %.6f, want > 0", res.JoulesPerQuery)
	}
	var billed float64
	for _, b := range res.Bills {
		if b.Statements == 0 {
			t.Fatalf("tenant %s executed nothing over the horizon", b.Tenant)
		}
		billed += b.AttributedJ
	}
	if billed <= 0 {
		t.Fatal("no tenant was billed any energy")
	}
	t.Logf("\n%s", res.Render())
}

// TestWorkloadEmbeddedRemoteBitIdentity: the same seeded workload driven
// through the embedded Session API and through the wire protocol
// produces bit-identical result rows and the same wall meter.
func TestWorkloadEmbeddedRemoteBitIdentity(t *testing.T) {
	cfg := WorkloadConfig{
		Tenants: 2, Days: 0.2, ArrivalsPerDay: 48, Seed: 11, CollectRows: true,
	}
	emb, err := RunWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Remote = true
	rem, err := RunWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Fingerprints) == 0 {
		t.Fatal("no result rows collected")
	}
	if len(emb.Fingerprints) != len(rem.Fingerprints) {
		t.Fatalf("embedded completed %d queries, remote %d", len(emb.Fingerprints), len(rem.Fingerprints))
	}
	for i := range emb.Fingerprints {
		if emb.Fingerprints[i] != rem.Fingerprints[i] {
			t.Fatalf("query %d rows differ across the wire:\nembedded:\n%s\nremote:\n%s",
				i, emb.Fingerprints[i], rem.Fingerprints[i])
		}
	}
	if emb.MeterJ != rem.MeterJ {
		t.Fatalf("wall meter differs: embedded %.9f J, remote %.9f J", emb.MeterJ, rem.MeterJ)
	}
	if emb.Statements != rem.Statements || emb.DeadlineHitRate != rem.DeadlineHitRate {
		t.Fatalf("trajectory differs: %+v vs %+v", emb, rem)
	}
}

// TestAnalyticArrivalBatching: with a batch window set, every analytic
// arrival lands exactly on a window boundary inside the horizon, the
// other classes keep their diurnal spread, and the batched schedule is
// deterministic for a fixed seed.
func TestAnalyticArrivalBatching(t *testing.T) {
	const window = 3600.0
	cfg := WorkloadConfig{Tenants: 3, Days: 0.5, ArrivalsPerDay: 200,
		Seed: 11, AnalyticBatchSec: window}
	cfg.defaults()
	arrivals := genArrivals(cfg)
	horizon := cfg.Days * 86400
	var analytic, offGrid int
	for _, a := range arrivals {
		if a.at >= horizon {
			t.Fatalf("arrival at %.1f past horizon %.1f", a.at, horizon)
		}
		if a.class != classAnalytic {
			if a.class != classReport && a.at != 0 && a.at == float64(int(a.at/window))*window {
				offGrid++ // unbatched classes landing on the grid would be a miracle
			}
			continue
		}
		analytic++
		if rem := a.at / window; rem != float64(int64(rem)) {
			t.Fatalf("analytic arrival at %.3f not on the %.0fs grid", a.at, window)
		}
	}
	if analytic == 0 {
		t.Fatal("no analytic arrivals generated")
	}
	if offGrid != 0 {
		t.Fatalf("%d non-analytic arrivals snapped to the grid", offGrid)
	}

	again := genArrivals(cfg)
	if len(again) != len(arrivals) {
		t.Fatalf("non-deterministic: %d vs %d arrivals", len(again), len(arrivals))
	}
	for i := range again {
		if again[i] != arrivals[i] {
			t.Fatalf("arrival %d differs across runs: %+v vs %+v", i, again[i], arrivals[i])
		}
	}
}
