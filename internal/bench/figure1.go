package bench

import (
	"fmt"

	"energydb/internal/core"
	"energydb/internal/energy"
	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/storage"
	"energydb/internal/tpch"
)

// Figure1Config parameterises the paper's diminishing-returns experiment:
// the TPC-H throughput test on a DL785-class server while the database is
// re-partitioned across different numbers of disks.
type Figure1Config struct {
	SF         float64 // scale factor (default 0.03)
	DiskCounts []int   // default {36, 66, 108, 204}, as in the paper
	Streams    int     // concurrent query clients (default 8)
	Rounds     int     // passes through the mix per stream (default 1)
	Seed       int64
}

// Figure1Point is one disk-count configuration's measurement.
type Figure1Point struct {
	Disks      int
	Seconds    float64
	Joules     float64
	Efficiency float64 // 1/J for the fixed throughput-test work
	AvgPowerW  float64
	Queries    int64
	// AttributedJ is the sum of per-query attributed joules; it equals
	// the whole-server Joules above by construction (the streams cover
	// the run wall-to-wall), which is the check that workload-level
	// accounting lost nothing.
	AttributedJ float64
	MeanWaitSec float64 // admission queueing per query
}

// Figure1Result reproduces Figure 1.
type Figure1Result struct {
	Points  []Figure1Point
	BestIdx int // index of the most energy-efficient point
}

// Best returns the most efficient point.
func (r *Figure1Result) Best() Figure1Point { return r.Points[r.BestIdx] }

// Fastest returns the highest-performance (largest-disk) point.
func (r *Figure1Result) Fastest() Figure1Point {
	best := r.Points[0]
	for _, p := range r.Points[1:] {
		if p.Seconds < best.Seconds {
			best = p
		}
	}
	return best
}

// EEGainVsFastest reports the efficiency gain of the optimum over the
// fastest configuration (paper: +14%).
func (r *Figure1Result) EEGainVsFastest() float64 {
	return r.Best().Efficiency/r.Fastest().Efficiency - 1
}

// PerfDropVsFastest reports the performance loss at the optimum
// (paper: −45%).
func (r *Figure1Result) PerfDropVsFastest() float64 {
	return 1 - r.Fastest().Seconds/r.Best().Seconds
}

// RunFigure1 sweeps the disk counts, running the full engine (SQL →
// optimizer → executor) on the simulated DL785 for each configuration.
func RunFigure1(cfg Figure1Config) (*Figure1Result, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.03
	}
	if len(cfg.DiskCounts) == 0 {
		cfg.DiskCounts = []int{36, 66, 108, 204}
	}
	if cfg.Streams == 0 {
		cfg.Streams = 24
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 2009
	}
	gen := tpch.Generate(cfg.SF, cfg.Seed)

	res := &Figure1Result{}
	for _, n := range cfg.DiskCounts {
		pt, err := runThroughputPoint(gen, n, cfg.Streams, cfg.Rounds)
		if err != nil {
			return nil, fmt.Errorf("bench: %d disks: %w", n, err)
		}
		res.Points = append(res.Points, pt)
	}
	for i, p := range res.Points {
		if p.Efficiency > res.Points[res.BestIdx].Efficiency {
			res.BestIdx = i
		}
	}
	return res, nil
}

// runThroughputPoint runs the throughput test once on an N-disk DL785.
func runThroughputPoint(gen *tpch.DB, disks, streams, rounds int) (Figure1Point, error) {
	db, err := core.Open(core.Config{
		Server:       hw.DL785(disks),
		VolumeLayout: storage.RAID5,
		PageBytes:    64 << 10,
		BlockRows:    8192,
		Objective:    opt.MinTime, // the audited system tuned for speed
		// The audited system was a commercial *row store* whose
		// compression shrank 300 GB only to 256 GB (1.17x); the
		// uncompressed row placement — all columns travelling together,
		// pipelined readahead — is the closest model of its scans.
		Variants: []string{"row/raw"},
		// 2008-era host I/O ceiling: the MSA70 trays share x4 3Gb/s SAS
		// links and the host's PCIe/HT paths; ~1.5 GB/s aggregate after
		// RAID-5 and protocol overheads.
		HostIOBandwidth: 1.5e9,
		// Commercial-controller transfer cap: 128 KB per request.
		IORunPages: 2,
	})
	if err != nil {
		return Figure1Point{}, err
	}
	for _, t := range gen.Tables {
		if err := db.LoadTable(t); err != nil {
			return Figure1Point{}, err
		}
	}
	// One session per throughput stream: each prepares the mix once (the
	// first Prepare also places the tables) and submits its rotation of
	// it. The admission controller grants each query its DOP from the
	// cores free at admission — under 24 saturating streams every grant
	// is one core, reproducing the audited 2008 system's serial per-query
	// plans without pinning Env.Cores, while the tail of the run (fewer
	// live streams) is free to plan wider.
	all, err := submitStreams(db, tpch.ThroughputMix(), streams, rounds)
	if err != nil {
		return Figure1Point{}, err
	}
	if err := db.Drain(); err != nil {
		return Figure1Point{}, err
	}
	var attributed float64
	for _, tg := range all {
		res, err := tg.Rows.Result()
		if err != nil {
			return Figure1Point{}, err
		}
		attributed += float64(res.Attributed)
	}
	elapsed := db.Srv.Eng.Now()
	joules := float64(db.Srv.Meter.TotalEnergy(energy.Seconds(elapsed)))
	return Figure1Point{
		Disks:       disks,
		Seconds:     elapsed,
		Joules:      joules,
		Efficiency:  1 / joules,
		AvgPowerW:   joules / elapsed,
		Queries:     int64(len(all)),
		AttributedJ: attributed,
		MeanWaitSec: db.SchedStats().MeanWait(),
	}, nil
}

// Render prints the Figure 1 series.
func (r *Figure1Result) Render() string {
	t := NewTable("Figure 1 — TPC-H throughput test: time and energy efficiency vs number of disks (DL785, RAID-5)",
		"disks", "time(s)", "energy(J)", "EE(1/J)", "avg power(W)", "queries", "attributed(J)", "wait(s)")
	for i, p := range r.Points {
		mark := ""
		if i == r.BestIdx {
			mark = "  <-- most efficient"
		}
		t.Add(
			fmt.Sprintf("%d", p.Disks),
			fmt.Sprintf("%.4g", p.Seconds),
			fmt.Sprintf("%.5g", p.Joules),
			fmt.Sprintf("%.4g%s", p.Efficiency, mark),
			fmt.Sprintf("%.4g", p.AvgPowerW),
			fmt.Sprintf("%d", p.Queries),
			fmt.Sprintf("%.5g", p.AttributedJ),
			fmt.Sprintf("%.3g", p.MeanWaitSec),
		)
	}
	t.Add("")
	t.Add(fmt.Sprintf("optimum vs fastest: EE %+.1f%%, performance %+.1f%%   [paper: +14%%, -45%%]",
		100*r.EEGainVsFastest(), -100*r.PerfDropVsFastest()))
	t.Add("per-query attributed joules sum to the wall meter at every point (lossless workload accounting)")
	return t.String()
}
