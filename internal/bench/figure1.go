package bench

import (
	"fmt"

	"energydb/internal/core"
	"energydb/internal/energy"
	"energydb/internal/exec"
	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/sim"
	"energydb/internal/storage"
	"energydb/internal/tpch"
)

// Figure1Config parameterises the paper's diminishing-returns experiment:
// the TPC-H throughput test on a DL785-class server while the database is
// re-partitioned across different numbers of disks.
type Figure1Config struct {
	SF         float64 // scale factor (default 0.03)
	DiskCounts []int   // default {36, 66, 108, 204}, as in the paper
	Streams    int     // concurrent query clients (default 8)
	Rounds     int     // passes through the mix per stream (default 1)
	Seed       int64
}

// Figure1Point is one disk-count configuration's measurement.
type Figure1Point struct {
	Disks      int
	Seconds    float64
	Joules     float64
	Efficiency float64 // 1/J for the fixed throughput-test work
	AvgPowerW  float64
	Queries    int64
}

// Figure1Result reproduces Figure 1.
type Figure1Result struct {
	Points  []Figure1Point
	BestIdx int // index of the most energy-efficient point
}

// Best returns the most efficient point.
func (r *Figure1Result) Best() Figure1Point { return r.Points[r.BestIdx] }

// Fastest returns the highest-performance (largest-disk) point.
func (r *Figure1Result) Fastest() Figure1Point {
	best := r.Points[0]
	for _, p := range r.Points[1:] {
		if p.Seconds < best.Seconds {
			best = p
		}
	}
	return best
}

// EEGainVsFastest reports the efficiency gain of the optimum over the
// fastest configuration (paper: +14%).
func (r *Figure1Result) EEGainVsFastest() float64 {
	return r.Best().Efficiency/r.Fastest().Efficiency - 1
}

// PerfDropVsFastest reports the performance loss at the optimum
// (paper: −45%).
func (r *Figure1Result) PerfDropVsFastest() float64 {
	return 1 - r.Fastest().Seconds/r.Best().Seconds
}

// RunFigure1 sweeps the disk counts, running the full engine (SQL →
// optimizer → executor) on the simulated DL785 for each configuration.
func RunFigure1(cfg Figure1Config) (*Figure1Result, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.03
	}
	if len(cfg.DiskCounts) == 0 {
		cfg.DiskCounts = []int{36, 66, 108, 204}
	}
	if cfg.Streams == 0 {
		cfg.Streams = 24
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 2009
	}
	gen := tpch.Generate(cfg.SF, cfg.Seed)

	res := &Figure1Result{}
	for _, n := range cfg.DiskCounts {
		pt, err := runThroughputPoint(gen, n, cfg.Streams, cfg.Rounds)
		if err != nil {
			return nil, fmt.Errorf("bench: %d disks: %w", n, err)
		}
		res.Points = append(res.Points, pt)
	}
	for i, p := range res.Points {
		if p.Efficiency > res.Points[res.BestIdx].Efficiency {
			res.BestIdx = i
		}
	}
	return res, nil
}

// runThroughputPoint runs the throughput test once on an N-disk DL785.
func runThroughputPoint(gen *tpch.DB, disks, streams, rounds int) (Figure1Point, error) {
	db, err := core.Open(core.Config{
		Server:       hw.DL785(disks),
		VolumeLayout: storage.RAID5,
		PageBytes:    64 << 10,
		BlockRows:    8192,
		Objective:    opt.MinTime, // the audited system tuned for speed
		// The audited system was a commercial *row store* whose
		// compression shrank 300 GB only to 256 GB (1.17x); the
		// uncompressed row placement — all columns travelling together,
		// pipelined readahead — is the closest model of its scans.
		Variants: []string{"row/raw"},
		// 2008-era host I/O ceiling: the MSA70 trays share x4 3Gb/s SAS
		// links and the host's PCIe/HT paths; ~1.5 GB/s aggregate after
		// RAID-5 and protocol overheads.
		HostIOBandwidth: 1.5e9,
		// Commercial-controller transfer cap: 128 KB per request.
		IORunPages: 2,
	})
	if err != nil {
		return Figure1Point{}, err
	}
	for _, t := range gen.Tables {
		if err := db.LoadTable(t); err != nil {
			return Figure1Point{}, err
		}
	}
	// Plan each query serially: the throughput test's 24 streams already
	// saturate the 32 cores with inter-query parallelism, exactly as the
	// audited 2008 system did. Intra-query DOP would double-book cores the
	// cost model assumes are quiet (concurrency-aware DOP is a ROADMAP
	// follow-up) and distort the figure.
	db.Env.Cores = 1
	// Compile the mix once (this also places the tables).
	mix := tpch.ThroughputMix()
	plans := make([]*opt.Plan, len(mix))
	for i, q := range mix {
		p, err := db.CompileSelect(q)
		if err != nil {
			return Figure1Point{}, fmt.Errorf("query %d: %w", i, err)
		}
		plans[i] = p
	}

	var queries int64
	errs := make([]error, streams)
	for s := 0; s < streams; s++ {
		s := s
		db.Go(fmt.Sprintf("stream%d", s), func(p *sim.Proc) {
			ctx := db.NewCtx(p)
			for r := 0; r < rounds; r++ {
				for qi := range plans {
					plan := plans[(qi+s)%len(plans)] // rotate per stream
					op, err := plan.Build(ctx)
					if err != nil {
						errs[s] = err
						return
					}
					if _, err := exec.RowCount(ctx, op); err != nil {
						errs[s] = err
						return
					}
					queries++
				}
			}
		})
	}
	if err := db.Run(); err != nil {
		return Figure1Point{}, err
	}
	for _, e := range errs {
		if e != nil {
			return Figure1Point{}, e
		}
	}
	elapsed := db.Srv.Eng.Now()
	joules := float64(db.Srv.Meter.TotalEnergy(energy.Seconds(elapsed)))
	return Figure1Point{
		Disks:      disks,
		Seconds:    elapsed,
		Joules:     joules,
		Efficiency: 1 / joules,
		AvgPowerW:  joules / elapsed,
		Queries:    queries,
	}, nil
}

// Render prints the Figure 1 series.
func (r *Figure1Result) Render() string {
	t := NewTable("Figure 1 — TPC-H throughput test: time and energy efficiency vs number of disks (DL785, RAID-5)",
		"disks", "time(s)", "energy(J)", "EE(1/J)", "avg power(W)", "queries")
	for i, p := range r.Points {
		mark := ""
		if i == r.BestIdx {
			mark = "  <-- most efficient"
		}
		t.Add(
			fmt.Sprintf("%d", p.Disks),
			fmt.Sprintf("%.4g", p.Seconds),
			fmt.Sprintf("%.5g", p.Joules),
			fmt.Sprintf("%.4g%s", p.Efficiency, mark),
			fmt.Sprintf("%.4g", p.AvgPowerW),
			fmt.Sprintf("%d", p.Queries),
		)
	}
	t.Add("")
	t.Add(fmt.Sprintf("optimum vs fastest: EE %+.1f%%, performance %+.1f%%   [paper: +14%%, -45%%]",
		100*r.EEGainVsFastest(), -100*r.PerfDropVsFastest()))
	return t.String()
}
