// Package bench contains the experiment drivers that regenerate every
// figure in the paper's evaluation plus the ablations DESIGN.md commits
// to. Each RunX function is deterministic, returns a structured result,
// and renders a text table shaped like the paper's series; acceptance
// criteria live in the package tests and EXPERIMENTS.md records
// paper-versus-measured values.
package bench

import (
	"fmt"
	"strings"
)

// Table is a simple text table builder for experiment reports.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// Add appends one formatted row.
func (t *Table) Add(cells ...string) { t.rows = append(t.rows, cells) }

// Addf appends a row of fmt.Sprint-ed values.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		if len(r) < len(t.header) {
			continue // footer/annotation rows do not set column widths
		}
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
