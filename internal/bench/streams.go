package bench

import (
	"fmt"
	"math"

	"energydb/internal/core"
	"energydb/internal/energy"
	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/sched"
	"energydb/internal/tpch"
)

// RunStreams drives the session API the way the paper's §4.2 imagines a
// workload manager would be driven: N concurrent client sessions submit
// the TPC-H mix against one simulated server, the admission controller
// grants each query its degree of parallelism from the cores free at
// admission, and every query comes back with an attributed energy bill
// that sums to the wall meter. It is the engine's concurrent-streams
// benchmark (BenchmarkConcurrentStreams) and the tpch_throughput
// example's first act.

// streamRows tags a submitted statement with its stream index.
type streamRows struct {
	Stream int
	Rows   *core.Rows
}

// submitStreams is the shared multi-stream driver loop (RunStreams,
// RunFigure1): one session per stream, the mix prepared once per session,
// rounds rotated submissions per stream, rows discarded (throughput
// tests want counts and energy accounts, not materialised results). The
// caller drains and reads each Rows' Result.
func submitStreams(db *core.DB, mix []string, streams, rounds int) ([]streamRows, error) {
	var all []streamRows
	for s := 0; s < streams; s++ {
		sess := db.Session()
		stmts := make([]*core.Stmt, len(mix))
		for i, q := range mix {
			st, err := sess.Prepare(q)
			if err != nil {
				return nil, fmt.Errorf("bench: stream %d query %d: %w", s, i, err)
			}
			stmts[i] = st
		}
		for r := 0; r < rounds; r++ {
			for qi := range stmts {
				rows, err := stmts[(qi+s)%len(stmts)].Query() // rotate per stream
				if err != nil {
					return nil, err
				}
				rows.Discard()
				all = append(all, streamRows{Stream: s, Rows: rows})
			}
		}
	}
	return all, nil
}

// StreamsConfig parameterises the concurrent-streams experiment.
type StreamsConfig struct {
	SF      float64 // scale factor (default 0.01)
	Streams int     // concurrent sessions (default 8)
	Rounds  int     // passes through the mix per stream (default 1)
	Disks   int     // SmallServer disk count (default 4)
	Seed    int64
}

// StreamStat is one session's aggregate.
type StreamStat struct {
	Stream      int
	Queries     int64
	Rows        int64
	AttributedJ float64 // sum of the stream's per-query attributed joules
	MarginalJ   float64 // the direct (device-charged) part of that
	WaitSec     float64 // admission queueing across the stream's queries
	BusySec     float64 // submission-to-completion across the stream
}

// StreamsResult is the whole experiment.
type StreamsResult struct {
	Streams     []StreamStat
	Seconds     float64 // simulated makespan
	MeterJ      float64 // whole-server meter at the end
	AttributedJ float64 // Σ per-query attributed joules
	Admission   sched.Stats
}

// AttributionError reports the relative gap between the attributed sum
// and the wall meter (zero up to float rounding, by construction).
func (r *StreamsResult) AttributionError() float64 {
	if r.MeterJ == 0 {
		return 0
	}
	return math.Abs(r.AttributedJ-r.MeterJ) / r.MeterJ
}

// RunStreams runs the experiment.
func RunStreams(cfg StreamsConfig) (*StreamsResult, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.01
	}
	if cfg.Streams == 0 {
		cfg.Streams = 8
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 1
	}
	if cfg.Disks == 0 {
		cfg.Disks = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 2009
	}
	db, err := core.Open(core.Config{
		Server:    hw.SmallServer(cfg.Disks),
		Objective: opt.MinTime,
	})
	if err != nil {
		return nil, err
	}
	for _, t := range tpch.Generate(cfg.SF, cfg.Seed).Tables {
		if err := db.LoadTable(t); err != nil {
			return nil, err
		}
	}

	all, err := submitStreams(db, tpch.ThroughputMix(), cfg.Streams, cfg.Rounds)
	if err != nil {
		return nil, err
	}
	if err := db.Drain(); err != nil {
		return nil, err
	}

	res := &StreamsResult{
		Streams:   make([]StreamStat, cfg.Streams),
		Seconds:   db.Srv.Eng.Now(),
		MeterJ:    float64(db.Srv.Meter.TotalEnergy(energy.Seconds(db.Srv.Eng.Now()))),
		Admission: db.SchedStats(),
	}
	for s := range res.Streams {
		res.Streams[s].Stream = s
	}
	for _, tg := range all {
		qr, err := tg.Rows.Result()
		if err != nil {
			return nil, err
		}
		st := &res.Streams[tg.Stream]
		st.Queries++
		st.Rows += qr.RowCount
		st.AttributedJ += float64(qr.Attributed)
		st.MarginalJ += float64(qr.Marginal)
		st.WaitSec += float64(qr.Wait)
		st.BusySec += float64(qr.Elapsed)
		res.AttributedJ += float64(qr.Attributed)
	}
	return res, nil
}

// Render prints the per-stream energy bill.
func (r *StreamsResult) Render() string {
	t := NewTable(fmt.Sprintf("Concurrent streams — %d sessions on one admission-controlled server (per-query energy attribution)", len(r.Streams)),
		"stream", "queries", "rows", "attributed(J)", "marginal(J)", "idle share(J)", "wait(s)", "busy(s)")
	for _, s := range r.Streams {
		t.Addf(s.Stream, s.Queries, s.Rows, s.AttributedJ, s.MarginalJ,
			s.AttributedJ-s.MarginalJ, s.WaitSec, s.BusySec)
	}
	t.Add("")
	t.Add(fmt.Sprintf("makespan %.4gs   wall meter %.5g J   Σ attributed %.5g J (gap %.2g)",
		r.Seconds, r.MeterJ, r.AttributedJ, r.AttributionError()))
	t.Add(fmt.Sprintf("admission: %d queries, peak %d running, %d queued (mean wait %.4gs)",
		r.Admission.Completed, r.Admission.PeakActive, r.Admission.Waited, r.Admission.MeanWait()))
	return t.String()
}
