package bench

import (
	"fmt"

	"energydb/internal/compress"
	"energydb/internal/energy"
	"energydb/internal/exec"
	"energydb/internal/hw"
	"energydb/internal/sim"
	"energydb/internal/storage"
	"energydb/internal/table"
	"energydb/internal/tpch"
)

// Figure2Config parameterises the paper's scan experiment: a relational
// scan of ORDERS projecting five of seven attributes on one 90 W CPU and
// three flash SSDs totalling 5 W, uncompressed versus compressed.
type Figure2Config struct {
	SF   float64 // TPC-H scale factor (default 0.05)
	Seed int64
}

// Figure2Run is one configuration's measurements.
type Figure2Run struct {
	Name       string
	TotalSec   float64
	CPUSec     float64
	Joules     float64 // metered whole-rig energy
	PaperModel float64 // 90 W x CPU + 5 W x total, the paper's arithmetic
	Ratio      float64 // compressed/raw bytes on the volume
}

// Figure2Result reproduces Figure 2.
type Figure2Result struct {
	Uncompressed Figure2Run
	Compressed   Figure2Run
	// Paper reference values for EXPERIMENTS.md comparisons.
	PaperUncompressed Figure2Run
	PaperCompressed   Figure2Run
}

// Speedup reports how much faster the compressed scan ran.
func (r *Figure2Result) Speedup() float64 {
	return r.Uncompressed.TotalSec / r.Compressed.TotalSec
}

// EnergyRatio reports compressed/uncompressed joules (paper: 487/338).
func (r *Figure2Result) EnergyRatio() float64 {
	return r.Compressed.Joules / r.Uncompressed.Joules
}

// RunFigure2 executes both configurations of the scan experiment.
func RunFigure2(cfg Figure2Config) (*Figure2Result, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.05
	}
	if cfg.Seed == 0 {
		cfg.Seed = 2009
	}
	gen := tpch.Generate(cfg.SF, cfg.Seed)
	orders := gen.Tables["orders"]

	run := func(name string, codec compress.Codec) (Figure2Run, error) {
		srv := hw.NewServer(hw.ScanRig())
		devs := make([]storage.BlockDevice, len(srv.SSDs))
		for i, s := range srv.SSDs {
			devs[i] = s
		}
		vol := storage.NewVolume("data", storage.Striped, 64<<10, devs)
		codecs := make([]compress.Codec, len(orders.Schema.Cols))
		for i := range codecs {
			codecs[i] = codec
		}
		st, err := exec.PlaceColumnMajor(orders, vol, 1, 32768, codecs)
		if err != nil {
			return Figure2Run{}, err
		}
		// Project o_orderkey, o_custkey, o_totalprice, o_orderdate,
		// o_orderpriority (5 of 7) and apply the trivial predicate.
		read := []int{0, 1, 3, 4, 5}
		emit := []int{0, 1, 2, 3, 4}
		pred := &exec.ColConst{Col: 2, Op: exec.Gt, Val: table.FloatVal(0)}

		var scanErr error
		srv.Eng.Go("scan", func(p *sim.Proc) {
			ctx := exec.NewCtx(p, srv.CPU)
			scan := exec.NewColumnScan(st, read, emit, pred)
			_, scanErr = exec.RowCount(ctx, scan)
		})
		if err := srv.Eng.Run(); err != nil {
			return Figure2Run{}, err
		}
		if scanErr != nil {
			return Figure2Run{}, scanErr
		}
		total := srv.Eng.Now()
		cpuSec := srv.CPU.BusyCoreSeconds()
		return Figure2Run{
			Name:       name,
			TotalSec:   total,
			CPUSec:     cpuSec,
			Joules:     float64(srv.Meter.TotalEnergy(energy.Seconds(total))),
			PaperModel: 90*cpuSec + 5*total,
			Ratio:      st.CompressionRatio(),
		}, nil
	}

	raw, err := run("uncompressed", compress.Raw)
	if err != nil {
		return nil, err
	}
	lz, err := run("compressed", compress.LZ)
	if err != nil {
		return nil, err
	}
	return &Figure2Result{
		Uncompressed:      raw,
		Compressed:        lz,
		PaperUncompressed: Figure2Run{Name: "paper/uncompressed", TotalSec: 10, CPUSec: 3.2, Joules: 338},
		PaperCompressed:   Figure2Run{Name: "paper/compressed", TotalSec: 5.5, CPUSec: 5.1, Joules: 487},
	}, nil
}

// Render prints the Figure 2 series next to the paper's numbers.
func (r *Figure2Result) Render() string {
	t := NewTable("Figure 2 — relational scan on uncompressed vs compressed data (1 CPU @90W, 3 SSDs @5W)",
		"config", "total(s)", "cpu(s)", "energy(J)", "E=90*cpu+5*total", "enc/raw")
	for _, run := range []Figure2Run{r.Uncompressed, r.Compressed} {
		t.Addf(run.Name, run.TotalSec, run.CPUSec, run.Joules, run.PaperModel, run.Ratio)
	}
	t.Addf(r.PaperUncompressed.Name, r.PaperUncompressed.TotalSec, r.PaperUncompressed.CPUSec,
		r.PaperUncompressed.Joules, "-", "-")
	t.Addf(r.PaperCompressed.Name, r.PaperCompressed.TotalSec, r.PaperCompressed.CPUSec,
		r.PaperCompressed.Joules, "-", "-")
	t.Add("")
	t.Add(fmt.Sprintf("speedup (compressed) = %.2fx   energy ratio = %.2fx   [paper: 1.82x, 1.44x]",
		r.Speedup(), r.EnergyRatio()))
	return t.String()
}
