package bench

import (
	"fmt"
	"math"
	"sort"

	"energydb/internal/core"
	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/tpch"
)

// RunPolicies is the workload-energy-manager experiment: the same mixed
// workload — a stream of deadline-carrying point queries interleaved
// with a backlog of background analytics — run under each admission
// policy / planner configuration, scored two ways at once: SLO
// compliance (deadline queries that finished in time) and whole-server
// energy from the wall meter, with the per-query attribution invariant
// checked on every run. The headline comparison is FIFO-at-P0 (the
// energy-oblivious baseline) against EDF with DVFS-aware planning:
// deadline work jumps the queue and runs fast at P0, background work
// runs slow at the deep P-state, and the meter reads strictly lower at
// no SLO cost.

// PolicyConfig is one point in the comparison: an admission policy plus
// the planner knobs it is paired with.
type PolicyConfig struct {
	Name       string
	Policy     string // core.Config.SchedPolicy: "", "edf", "energy"
	Objective  opt.Objective
	EnergyMode opt.EnergyMode
	DVFS       bool
	HoldCores  int
}

// DefaultPolicyConfigs is the ladder the benchmark walks: the
// energy-oblivious baseline, EDF alone (SLO fix, same energy bill), EDF
// with DVFS-aware energy planning (the headline), and the consolidating
// energy policy with held-back headroom.
func DefaultPolicyConfigs() []PolicyConfig {
	return []PolicyConfig{
		{Name: "fifo@P0", Policy: "", Objective: opt.MinTime},
		{Name: "edf@P0", Policy: "edf", Objective: opt.MinTime},
		{Name: "edf+dvfs", Policy: "edf", Objective: opt.MinEnergy,
			EnergyMode: opt.IdleFloorAware, DVFS: true},
		{Name: "energy+dvfs", Policy: "energy", Objective: opt.MinEnergy,
			EnergyMode: opt.IdleFloorAware, DVFS: true, HoldCores: 2},
	}
}

// PoliciesConfig parameterises the experiment.
type PoliciesConfig struct {
	SF         float64 // scale factor (default 0.02)
	Deadlines  int     // deadline-carrying point queries (default 8)
	Background int     // background analytic statements (default 24)
	Slack      float64 // deadline = arrival + Slack × solo latency (default 8)
	Configs    []PolicyConfig
}

// PolicyPoint is one configuration's scorecard.
type PolicyPoint struct {
	Name        string
	SLOMet      int     // deadline queries that finished in time
	SLOTotal    int     // deadline queries submitted
	Background  int     // background statements completed
	Seconds     float64 // simulated makespan
	MeterJ      float64 // wall meter at the last settlement
	AttributedJ float64 // Σ per-query attributed + unattributed floor
	AttrGapJ    float64 // |AttributedJ − MeterJ|, absolute
	MeanWaitS   float64 // mean admission queueing delay
	Regrants    int64
}

// SLO reports the point's deadline compliance in [0, 1].
func (p PolicyPoint) SLO() float64 {
	if p.SLOTotal == 0 {
		return 1
	}
	return float64(p.SLOMet) / float64(p.SLOTotal)
}

// PoliciesResult is the whole comparison.
type PoliciesResult struct {
	Points []PolicyPoint
	SF     float64
}

// Point returns the named configuration's scorecard.
func (r *PoliciesResult) Point(name string) (PolicyPoint, bool) {
	for _, p := range r.Points {
		if p.Name == name {
			return p, true
		}
	}
	return PolicyPoint{}, false
}

// policyRig is the machine the comparison runs on: the CPU-bound flash
// rig with a low idle floor and a deep P-state — the regime where DVFS
// pays, because even a single core's 25 W marginal power dominates the
// floor, so slowing down trades cheap floor-seconds for expensive active
// joules (and the idle-floor-honest objective can see that it does).
func policyRig() hw.ServerSpec {
	ssd := hw.FlashSSD2008()
	ssd.ReadBW *= 24 // NVMe-class striped array: scans go CPU-bound
	ssd.ReadLatency /= 100
	return hw.ServerSpec{
		Name: "policy-rig",
		CPU: hw.CPUSpec{
			Name:          "xeon-8c",
			Cores:         8,
			FreqHz:        2.4e9,
			CyclesPerByte: 3.2,
			IdleWatts:     10,
			ActivePerCore: 25,
			PStates: []hw.PState{
				{Name: "P0", FreqScale: 1, PowerScale: 1},
				{Name: "P1", FreqScale: 0.7, PowerScale: 0.4},
			},
		},
		NumSSDs: 4,
		SSD:     ssd,
	}
}

const (
	// policyDeadlineQuery is the latency-sensitive side of the mix: a
	// cheap point aggregate a client would wrap in an SLO.
	policyDeadlineQuery = `SELECT COUNT(*) AS n FROM orders WHERE o_totalprice < 100000`
	// policyBackgroundQuery is the analytic side: the CPU-heavy lineitem
	// aggregation whose only deadline is "eventually".
	policyBackgroundQuery = `SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q
		FROM lineitem
		WHERE l_quantity < 48 AND l_discount > 0.01 AND l_extendedprice < 80000
		GROUP BY l_returnflag ORDER BY l_returnflag`
	// policyBackgroundLight is a lighter analytic interleaved with the
	// heavy one so background service times decorrelate — completions
	// spread out instead of arriving in synchronized waves.
	policyBackgroundLight = `SELECT o_orderpriority, COUNT(*) AS n FROM orders
		GROUP BY o_orderpriority ORDER BY o_orderpriority`
)

// openPolicyDB opens the rig under one configuration and places every
// table (count-only probes, as the chaos harness does), returning the
// warm-up joules so attribution sums over every account ever opened.
func openPolicyDB(cfg PolicyConfig, sf float64) (*core.DB, float64, error) {
	db, err := core.Open(core.Config{
		Server:      policyRig(),
		Objective:   cfg.Objective,
		EnergyMode:  cfg.EnergyMode,
		SchedPolicy: cfg.Policy,
		HoldCores:   cfg.HoldCores,
		DVFS:        cfg.DVFS,
		BlockRows:   4096,
	})
	if err != nil {
		return nil, 0, err
	}
	gen := tpch.Generate(sf, 42)
	names := make([]string, 0, len(gen.Tables))
	for name := range gen.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	warm := 0.0
	for _, name := range names {
		if err := db.LoadTable(gen.Tables[name]); err != nil {
			return nil, 0, err
		}
		res, err := db.Exec("SELECT COUNT(*) FROM " + name)
		if err != nil {
			return nil, 0, err
		}
		warm += float64(res.Attributed)
	}
	return db, warm, nil
}

// RunPolicies runs the comparison.
func RunPolicies(cfg PoliciesConfig) (*PoliciesResult, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.02
	}
	if cfg.Deadlines == 0 {
		cfg.Deadlines = 8
	}
	if cfg.Background == 0 {
		cfg.Background = 32
	}
	if cfg.Slack == 0 {
		cfg.Slack = 20
	}
	if cfg.Configs == nil {
		cfg.Configs = DefaultPolicyConfigs()
	}

	// Calibrate on the baseline configuration: solo latencies size the
	// deadlines and the arrival schedule, identically for every policy so
	// the SLO comparison is apples to apples.
	cal, _, err := openPolicyDB(cfg.Configs[0], cfg.SF)
	if err != nil {
		return nil, err
	}
	dlRes, err := cal.Exec(policyDeadlineQuery)
	if err != nil {
		return nil, err
	}
	bgRes, err := cal.Exec(policyBackgroundQuery)
	if err != nil {
		return nil, err
	}
	soloDL := float64(dlRes.Elapsed)
	soloBG := float64(bgRes.Elapsed)
	// svc is one heavy background statement's core-seconds (solo elapsed
	// times the solo plan's width). Sixteen sessions — twice the core
	// count — each run their statements serially, so once the ramp-in
	// completes the box holds eight one-core background queries running
	// and roughly eight more waiting: a standing queue, the regime where
	// the dispatch policy and not spare capacity decides who runs next.
	svc := soloBG * float64(bgRes.Plan.MaxDOP())
	// Two thirds of the background statements are heavy (svc core-seconds
	// each), one third light (~a tenth of that); the makespan estimate is
	// the demanded core-seconds over the core count, plus the ramp-in.
	makespan := svc * 0.7 * float64(cfg.Background) / 8
	slack := cfg.Slack * soloDL

	res := &PoliciesResult{SF: cfg.SF}
	for _, pc := range cfg.Configs {
		db, warm, err := openPolicyDB(pc, cfg.SF)
		if err != nil {
			return nil, err
		}
		start := db.Srv.Eng.Now()

		// Background load: statements round-robin over the sessions, each
		// session's arrivals staggered by a fraction of svc so completions
		// spread out instead of releasing in synchronized waves. A session
		// runs its statements serially, so the sessions — not the
		// statement count — bound concurrent claimants.
		const bgSessions = 16
		type bgSess struct {
			heavy, light *core.Stmt
		}
		sessions := make([]bgSess, bgSessions)
		for j := range sessions {
			sess := db.Session()
			heavy, err := sess.Prepare(policyBackgroundQuery)
			if err != nil {
				return nil, err
			}
			light, err := sess.Prepare(policyBackgroundLight)
			if err != nil {
				return nil, err
			}
			sessions[j] = bgSess{heavy: heavy, light: light}
		}
		var background []*core.Rows
		for i := 0; i < cfg.Background; i++ {
			j := i % bgSessions
			// Each session opens at its own phase (an irrational-ratio
			// stagger, so completions never re-synchronize into waves);
			// its later statements run back to back behind the first.
			at := start + svc*0.046*float64(j)
			st := sessions[j].heavy
			if i%3 == 2 {
				st = sessions[j].light
			}
			rows, err := st.QueryAt(at)
			if err != nil {
				return nil, err
			}
			rows.Discard()
			background = append(background, rows)
		}

		// Deadline stream: arrivals spread across the first half of the
		// backlog's busy period, each with the same absolute slack.
		dlSess := db.Session()
		dlStmt, err := dlSess.Prepare(policyDeadlineQuery)
		if err != nil {
			return nil, err
		}
		var deadline []*core.Rows
		for i := 0; i < cfg.Deadlines; i++ {
			at := start + makespan*(0.3+0.5*float64(i)/float64(cfg.Deadlines))
			rows, err := dlStmt.QueryAtDeadline(at, at+slack)
			if err != nil {
				return nil, err
			}
			rows.Discard()
			deadline = append(deadline, rows)
		}

		if err := db.Drain(); err != nil {
			return nil, err
		}

		pt := PolicyPoint{Name: pc.Name, SLOTotal: cfg.Deadlines}
		sum := warm
		for _, rows := range background {
			if err := rows.Err(); err != nil {
				return nil, fmt.Errorf("bench: %s background: %w", pc.Name, err)
			}
			pt.Background++
			sum += float64(rows.Attributed())
		}
		for _, rows := range deadline {
			if rows.Err() == nil {
				pt.SLOMet++
			}
			sum += float64(rows.Attributed())
		}
		sum += float64(db.Attr.Unattributed())

		st := db.SchedStats()
		pt.Seconds = db.Srv.Eng.Now() - start
		pt.MeterJ = float64(db.Srv.Meter.TotalEnergy(db.Attr.SettledThrough()))
		pt.AttributedJ = sum
		pt.AttrGapJ = math.Abs(sum - pt.MeterJ)
		pt.MeanWaitS = st.MeanWait()
		pt.Regrants = st.Regrants
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render prints the scorecard table.
func (r *PoliciesResult) Render() string {
	t := NewTable(fmt.Sprintf("Admission policies × DVFS — mixed deadline + background workload (sf %g)", r.SF),
		"config", "SLO", "background", "makespan(s)", "meter(J)", "Σ attributed(J)", "gap(J)", "mean wait(s)", "regrants")
	for _, p := range r.Points {
		t.Addf(p.Name, fmt.Sprintf("%d/%d", p.SLOMet, p.SLOTotal), p.Background,
			p.Seconds, p.MeterJ, p.AttributedJ, p.AttrGapJ, p.MeanWaitS, p.Regrants)
	}
	if base, ok := r.Point("fifo@P0"); ok {
		if dvfs, ok := r.Point("edf+dvfs"); ok && base.MeterJ > 0 {
			t.Add("")
			t.Add(fmt.Sprintf("edf+dvfs vs fifo@P0: %.2fx energy at SLO %d/%d vs %d/%d",
				dvfs.MeterJ/base.MeterJ, dvfs.SLOMet, dvfs.SLOTotal, base.SLOMet, base.SLOTotal))
		}
	}
	return t.String()
}
