package bench

import "testing"

// TestPoliciesShape is the PR's acceptance scenario: on the mixed
// deadline + background workload, EDF with DVFS-aware planning must meet
// at least FIFO-at-P0's SLO while metering strictly lower whole-server
// joules, and every configuration's per-query attribution must telescope
// to its wall meter.
func TestPoliciesShape(t *testing.T) {
	res, err := RunPolicies(PoliciesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(DefaultPolicyConfigs()) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(DefaultPolicyConfigs()))
	}
	for _, p := range res.Points {
		if p.Background == 0 || p.SLOTotal == 0 {
			t.Fatalf("%s: empty workload: %+v", p.Name, p)
		}
		if p.AttrGapJ > 1e-6 {
			t.Errorf("%s: attribution gap %g J", p.Name, p.AttrGapJ)
		}
		if p.MeterJ <= 0 || p.Seconds <= 0 {
			t.Errorf("%s: degenerate meter %g J / makespan %g s", p.Name, p.MeterJ, p.Seconds)
		}
	}

	fifo, ok := res.Point("fifo@P0")
	if !ok {
		t.Fatal("no fifo@P0 point")
	}
	edf, ok := res.Point("edf@P0")
	if !ok {
		t.Fatal("no edf@P0 point")
	}
	dvfs, ok := res.Point("edf+dvfs")
	if !ok {
		t.Fatal("no edf+dvfs point")
	}

	// The scenario only demonstrates anything if the baseline actually
	// struggles: FIFO queues deadline arrivals behind the backlog.
	if fifo.SLOMet == fifo.SLOTotal {
		t.Errorf("fifo@P0 met every deadline (%d/%d); the backlog is not stressing it",
			fifo.SLOMet, fifo.SLOTotal)
	}
	// EDF fixes the SLO without touching the planner.
	if edf.SLOMet < fifo.SLOMet {
		t.Errorf("edf@P0 SLO %d/%d below fifo's %d/%d",
			edf.SLOMet, edf.SLOTotal, fifo.SLOMet, fifo.SLOTotal)
	}
	// The headline: DVFS-aware planning under EDF holds the SLO line and
	// strictly beats the baseline on the wall meter.
	if dvfs.SLOMet < fifo.SLOMet {
		t.Errorf("edf+dvfs SLO %d/%d below fifo@P0's %d/%d",
			dvfs.SLOMet, dvfs.SLOTotal, fifo.SLOMet, fifo.SLOTotal)
	}
	if dvfs.MeterJ >= fifo.MeterJ {
		t.Errorf("edf+dvfs metered %.4f J, not strictly below fifo@P0's %.4f J",
			dvfs.MeterJ, fifo.MeterJ)
	}
	if testing.Verbose() {
		t.Log("\n" + res.Render())
	}
}
