// Package energydb's benchmarks regenerate every figure and ablation of
// the paper's evaluation (go test -bench=. -benchmem). Each benchmark
// reports the experiment's headline metrics as custom benchmark units so
// `go test -bench` output doubles as the results table; EXPERIMENTS.md
// records paper-versus-measured values.
package energydb_test

import (
	"testing"

	"energydb/internal/bench"
)

// BenchmarkFigure1 reproduces the TPC-H disk-count sweep (Figure 1).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFigure1(bench.Figure1Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Best().Disks), "best-disks")
		b.ReportMetric(100*r.EEGainVsFastest(), "EE-gain-%")
		b.ReportMetric(100*r.PerfDropVsFastest(), "perf-drop-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkConcurrentStreams drives 8 concurrent sessions through the
// admission-controlled Session API and reports the makespan plus the
// attribution ledger (Σ per-query attributed joules vs the wall meter).
func BenchmarkConcurrentStreams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunStreams(bench.StreamsConfig{Streams: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Seconds*1000, "sim_ms")
		b.ReportMetric(r.MeterJ, "meter_J")
		b.ReportMetric(r.AttributionError(), "attr_gap")
		b.ReportMetric(float64(r.Admission.PeakActive), "peak_active")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkPolicyComparison runs the workload-energy-manager scenario:
// the mixed deadline + background workload under FIFO, EDF, EDF+DVFS,
// and the consolidating energy policy, reporting each configuration's
// SLO compliance and attributed whole-server joules.
func BenchmarkPolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunPolicies(bench.PoliciesConfig{})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			b.ReportMetric(p.Seconds*1000, p.Name+"_sim_ms")
			b.ReportMetric(p.MeterJ, p.Name+"_J")
			b.ReportMetric(p.SLO(), p.Name+"_slo")
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFigure2 reproduces the compressed-vs-raw scan (Figure 2).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFigure2(bench.Figure2Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup(), "speedup-x")
		b.ReportMetric(r.EnergyRatio(), "energy-ratio-x")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkJoinFlip reproduces the §4.1 join-algorithm flip sweep (E3).
func BenchmarkJoinFlip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunJoinFlip()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FlipPrice, "flip-W/byte")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkConsolidation reproduces the §4.2 batching-window sweep (E4).
func BenchmarkConsolidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunConsolidation()
		if err != nil {
			b.Fatal(err)
		}
		base := r.Points[0].DiskJoules
		best := base
		for _, p := range r.Points {
			if p.DiskJoules < best {
				best = p.DiskJoules
			}
		}
		b.ReportMetric(100*(1-best/base), "disk-J-saved-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkBufferPolicy reproduces the §4.3 replacement-policy study (E5).
func BenchmarkBufferPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunBufferPolicy()
		if err != nil {
			b.Fatal(err)
		}
		var lru, ea float64
		for _, p := range r.Points {
			switch p.Policy {
			case "lru":
				lru = p.DiskJoules
			case "energy":
				ea = p.DiskJoules
			}
		}
		b.ReportMetric(100*(1-ea/lru), "disk-J-vs-lru-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkGroupCommit reproduces the §5.2 batching-factor sweep (E6).
func BenchmarkGroupCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunGroupCommit()
		if err != nil {
			b.Fatal(err)
		}
		first := r.Points[0]
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(100*(1-last.JoulesPerCommit/first.JoulesPerCommit), "J/commit-saved-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkCluster reproduces the §2.4 consolidation comparison (E7).
func BenchmarkCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunCluster()
		if err != nil {
			b.Fatal(err)
		}
		var spread, cons float64
		for _, p := range r.Results {
			switch p.Policy {
			case "spread":
				spread = p.TotalJoules
			case "consolidate":
				cons = p.TotalJoules
			}
		}
		b.ReportMetric(100*(1-cons/spread), "energy-saved-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkProportionality reproduces the §2.3 power-vs-load curve (E8).
func BenchmarkProportionality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunProportionality()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Index, "EP-index")
		b.ReportMetric(r.DynamicRange, "dynamic-range")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}
