// eelint is the executor-contract multichecker: it runs the analyzer
// suite in internal/lint over the packages matching its arguments and
// reports every contract violation with file:line positions.
//
// Standalone:
//
//	go run ./cmd/eelint ./...          # whole module, test files included
//	go run ./cmd/eelint ./internal/exec
//
// Exit status is 1 when any diagnostic is reported, 0 on a clean tree.
//
// The binary also speaks the `go vet -vettool` unit-checker protocol
// (invoked per compilation unit with a *.cfg JSON file and -V=full for
// tool identification), so CI and editors can run it through vet:
//
//	go build -o eelint ./cmd/eelint
//	go vet -vettool=$(pwd)/eelint ./...
//
// In vet mode packages arrive pre-typechecked via export data, so the
// suite runs without re-loading the module from source.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"energydb/internal/lint"
)

func main() {
	versionFlag := flag.Bool("V", false, "print version (vet tool protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: eelint [packages]\n       eelint <unit>.cfg   (go vet -vettool mode)\n")
		flag.PrintDefaults()
	}
	// The vet protocol probes the tool with -V=full (identification) and
	// -flags (JSON list of tool flags, of which the suite has none).
	for _, a := range os.Args[1:] {
		switch a {
		case "-V=full", "--V=full":
			fmt.Printf("eelint version v1.0.0\n")
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	flag.Parse()
	if *versionFlag {
		fmt.Printf("eelint version v1.0.0\n")
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetMode(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

func standalone(patterns []string) int {
	loader, err := lint.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := loader.LoadAndRun(lint.Suite(), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "eelint: %d contract violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetCfg is the unit-checker configuration cmd/go writes for -vettool
// invocations (a subset of the fields; unknown fields are ignored).
type vetCfg struct {
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// vetMode analyzes one compilation unit described by cfgPath, printing
// diagnostics as the JSON tree cmd/go expects and exiting 2 when any
// are found (the unit-checker convention).
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "eelint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The protocol requires the facts file regardless of findings; the
	// suite exports no facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, err := analyzeUnit(&cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eelint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	printVetJSON(os.Stdout, cfg.ImportPath, diags)
	return 2
}

// analyzeUnit typechecks the unit's files against the export data cmd/go
// compiled for its dependencies, then runs the suite.
func analyzeUnit(cfg *vetCfg) ([]lint.Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer:    mappedImporter{imp: compilerImporter, m: cfg.ImportMap},
		FakeImportC: true,
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &lint.Package{
		Path:  strings.TrimSuffix(cfg.ImportPath, "_test"),
		Fset:  fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}
	return lint.RunAnalyzers(lp, lint.Suite())
}

// mappedImporter applies the unit's ImportMap (vendoring, test variants)
// before delegating to the export-data importer.
type mappedImporter struct {
	imp types.Importer
	m   map[string]string
}

func (mi mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.imp.Import(path)
}

// printVetJSON emits diagnostics in the {"pkg": {"analyzer": [...]}}
// shape cmd/go parses from unit checkers.
func printVetJSON(w io.Writer, importPath string, diags []lint.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    d.Pos.String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{importPath: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	_ = enc.Encode(out)
}
