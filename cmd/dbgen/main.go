// Command dbgen writes the deterministic TPC-H-like dataset as CSV files.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"energydb"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	dir := flag.String("o", ".", "output directory")
	flag.Parse()

	tables := energydb.GenerateTPCH(*sf, *seed)
	for name, t := range tables {
		path := filepath.Join(*dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := csv.NewWriter(f)
		header := make([]string, len(t.Schema.Cols))
		for i, c := range t.Schema.Cols {
			header[i] = c.Name
		}
		w.Write(header)
		for i := 0; i < t.Rows(); i++ {
			row := t.Slice(i, i+1).Row(0)
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.String()
			}
			w.Write(cells)
		}
		w.Flush()
		f.Close()
		fmt.Printf("%s: %d rows\n", path, t.Rows())
	}
}
