// Command eebench regenerates every figure and ablation from the paper's
// evaluation; see EXPERIMENTS.md for the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"

	"energydb/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: f1, f2, streams, policies, joinflip, consolidate, buffer, wal, cluster, ep, all")
	sf := flag.Float64("sf", 0, "TPC-H scale factor override (f1/f2)")
	flag.Parse()

	run := func(name string, fn func() (interface{ Render() string }, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		r, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
	}

	run("f1", func() (interface{ Render() string }, error) {
		return bench.RunFigure1(bench.Figure1Config{SF: *sf})
	})
	run("f2", func() (interface{ Render() string }, error) {
		return bench.RunFigure2(bench.Figure2Config{SF: *sf})
	})
	run("streams", func() (interface{ Render() string }, error) {
		return bench.RunStreams(bench.StreamsConfig{SF: *sf})
	})
	run("policies", func() (interface{ Render() string }, error) {
		return bench.RunPolicies(bench.PoliciesConfig{})
	})
	run("joinflip", func() (interface{ Render() string }, error) { return bench.RunJoinFlip() })
	run("consolidate", func() (interface{ Render() string }, error) { return bench.RunConsolidation() })
	run("buffer", func() (interface{ Render() string }, error) { return bench.RunBufferPolicy() })
	run("wal", func() (interface{ Render() string }, error) { return bench.RunGroupCommit() })
	run("cluster", func() (interface{ Render() string }, error) { return bench.RunCluster() })
	run("ep", func() (interface{ Render() string }, error) { return bench.RunProportionality() })
}
