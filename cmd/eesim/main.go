// Command eesim runs the multi-tenant diurnal workload simulator: N
// tenants with sinusoidal arrival curves drive a mixed
// interactive/analytic/insert workload through the server's wire
// protocol (or the embedded Session API with -embedded), print the
// per-tenant billing report, and write the latency/energy trajectory to
// a JSON file for CI tracking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"energydb/internal/bench"
)

func main() {
	tenants := flag.Int("tenants", 4, "number of tenants")
	days := flag.Float64("days", 2, "simulated days")
	sf := flag.Float64("sf", 0, "TPC-H scale factor for the analytic tables")
	seed := flag.Int64("seed", 0, "arrival-process seed")
	disks := flag.Int("disks", 0, "data disks on the small-server rig")
	apd := flag.Float64("arrivals", 0, "mean statement arrivals per tenant-day")
	deadline := flag.Float64("deadline", 0, "interactive latency budget, seconds")
	abatch := flag.Float64("analytic-batch", 0, "batch window for analytic-join arrivals, seconds (0 = unbatched)")
	embedded := flag.Bool("embedded", false, "drive the embedded Session API instead of the wire protocol")
	out := flag.String("out", "", "write the trajectory JSON here (e.g. BENCH_workload.json)")
	flag.Parse()

	res, err := bench.RunWorkload(bench.WorkloadConfig{
		Tenants:          *tenants,
		Days:             *days,
		SF:               *sf,
		Seed:             *seed,
		Disks:            *disks,
		ArrivalsPerDay:   *apd,
		DeadlineSec:      *deadline,
		Remote:           !*embedded,
		AnalyticBatchSec: *abatch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "eesim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
	if gap := res.AttributionError(); gap > 1e-6 {
		fmt.Fprintf(os.Stderr, "eesim: billing does not close (gap %.2e J)\n", gap)
		os.Exit(1)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "eesim: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "eesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
