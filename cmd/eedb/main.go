// Command eedb is a SQL REPL over an energy-aware database on a simulated
// server: every query prints its rows, simulated elapsed time, and joules.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"energydb"
)

func main() {
	objective := flag.String("objective", "time", "optimizer objective: time, energy, edp")
	disks := flag.Int("disks", 4, "number of disks on the simulated server")
	sf := flag.Float64("tpch", 0, "preload TPC-H at this scale factor (0 = none)")
	flag.Parse()

	cfg := energydb.Config{Server: energydb.SmallServer(*disks)}
	switch *objective {
	case "time":
		cfg.Objective = energydb.MinTime
	case "energy":
		cfg.Objective = energydb.MinEnergy
	case "edp":
		cfg.Objective = energydb.MinEDP
	default:
		fmt.Fprintf(os.Stderr, "unknown objective %q\n", *objective)
		os.Exit(1)
	}
	db, err := energydb.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *sf > 0 {
		for _, t := range energydb.GenerateTPCH(*sf, 42) {
			if err := db.LoadTable(t); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("loaded TPC-H sf=%v: %s\n", *sf, strings.Join(db.Tables(), ", "))
	}

	fmt.Println("eedb — energy-aware SQL shell (end statements with ';', \\q to quit)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("eedb> ")
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == `\q` {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("  ... ")
			continue
		}
		stmt := buf.String()
		buf.Reset()
		res, err := db.Exec(stmt)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			printResult(res)
		}
		fmt.Print("eedb> ")
	}
}

func printResult(res *energydb.Result) {
	if res.Plan != nil && res.Rows == nil {
		fmt.Print(res.Plan.Explain())
		return
	}
	if res.Rows != nil {
		for _, c := range res.Rows.Schema.Cols {
			fmt.Printf("%-18s", c.Name)
		}
		fmt.Println()
		n := res.Rows.Rows()
		shown := n
		if shown > 25 {
			shown = 25
		}
		for i := 0; i < shown; i++ {
			for _, v := range res.Rows.Slice(i, i+1).Row(0) {
				fmt.Printf("%-18s", v.String())
			}
			fmt.Println()
		}
		if shown < n {
			fmt.Printf("... (%d rows)\n", n)
		}
		fmt.Printf("%d row(s) in %v, %v (%.3g rows/J)\n",
			n, res.Elapsed, res.Joules, float64(res.Efficiency()))
		return
	}
	fmt.Println("ok")
}
