// Command eedb is a SQL REPL over an energy-aware database on a simulated
// server: every query prints its rows, simulated elapsed time, and joules.
//
// The shell always speaks the wire protocol through the client driver.
// By default it embeds a server in-process (over an in-memory pipe);
// -connect attaches to a remote eedb instead, and -serve exposes the
// embedded server on TCP for other shells to join.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"energydb"
	"energydb/internal/client"
	"energydb/internal/server"
	"energydb/internal/table"
)

func main() {
	objective := flag.String("objective", "time", "optimizer objective: time, energy, edp")
	disks := flag.Int("disks", 4, "number of disks on the simulated server")
	sf := flag.Float64("tpch", 0, "preload TPC-H at this scale factor (0 = none)")
	tenant := flag.String("tenant", "local", "tenant name for energy billing")
	connect := flag.String("connect", "", "attach to a served eedb at this address instead of embedding")
	serve := flag.String("serve", "", "also listen on this TCP address (e.g. :7543) for other shells")
	flag.Parse()

	var c *client.DB
	var srv *server.Server
	if *connect != "" {
		var err error
		c, err = client.Dial(*connect, *tenant)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("connected to %s as tenant %q\n", *connect, *tenant)
	} else {
		cfg := energydb.Config{Server: energydb.SmallServer(*disks)}
		switch *objective {
		case "time":
			cfg.Objective = energydb.MinTime
		case "energy":
			cfg.Objective = energydb.MinEnergy
		case "edp":
			cfg.Objective = energydb.MinEDP
		default:
			fmt.Fprintf(os.Stderr, "unknown objective %q\n", *objective)
			os.Exit(1)
		}
		db, err := energydb.Open(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *sf > 0 {
			for _, t := range energydb.GenerateTPCH(*sf, 42) {
				if err := db.LoadTable(t); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			fmt.Printf("loaded TPC-H sf=%v: %s\n", *sf, strings.Join(db.Tables(), ", "))
		}
		srv = server.New(db)
		if *serve != "" {
			if err := srv.Listen(*serve); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("serving on %s\n", srv.Addr())
		}
		c, err = client.New(srv.Pipe(), *tenant)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	sess, err := c.Session()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("eedb — energy-aware SQL shell (end statements with ';', \\q to quit)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("eedb> ")
	for sc.Scan() {
		line := sc.Text()
		switch strings.TrimSpace(line) {
		case `\q`:
			c.Close()
			if srv != nil {
				srv.Close()
			}
			return
		case `\meter`:
			printMeter(c)
			fmt.Print("eedb> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("  ... ")
			continue
		}
		stmt := buf.String()
		buf.Reset()
		if err := run(c, sess, stmt); err != nil {
			fmt.Println("error:", err)
		}
		fmt.Print("eedb> ")
	}
}

// run executes one statement through the wire protocol.
func run(c *client.DB, sess *client.Session, stmt string) error {
	head := strings.ToUpper(strings.Fields(strings.TrimSpace(stmt))[0])
	switch head {
	case "EXPLAIN":
		b, err := sess.Explain(stmt)
		if err != nil {
			return err
		}
		printRows(b.Schema, func() (int, func(i int) []Value) { return b.Rows(), b.Row })
		return nil
	case "SELECT":
		rows, err := sess.Query(stmt)
		if err != nil {
			return err
		}
		tab, res, err := rows.Collect()
		if err != nil {
			return err
		}
		if tab != nil {
			printRows(tab.Schema, func() (int, func(i int) []Value) {
				return tab.Rows(), func(i int) []Value { return tab.Slice(i, i+1).Row(0) }
			})
		}
		fmt.Printf("%d row(s) in %.4gs, %.4gJ attributed (%.4gJ marginal + %.4gJ idle share)\n",
			res.RowCount, res.Elapsed, res.Attributed, res.Marginal, res.Shared)
		return nil
	default:
		if err := c.Exec(stmt); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	}
}

// Value aliases the storage value type for the row printers.
type Value = table.Value

func printRows(schema *table.Schema, rows func() (int, func(i int) []Value)) {
	for _, col := range schema.Cols {
		fmt.Printf("%-18s", col.Name)
	}
	fmt.Println()
	n, row := rows()
	shown := n
	if shown > 25 {
		shown = 25
	}
	for i := 0; i < shown; i++ {
		for _, v := range row(i) {
			fmt.Printf("%-18s", v.String())
		}
		fmt.Println()
	}
	if shown < n {
		fmt.Printf("... (%d rows)\n", n)
	}
}

func printMeter(c *client.DB) {
	m, err := c.Meter()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("t=%.3fs  meter %.4gJ  idle floor %.4gJ\n", m.Now, m.MeterJ, m.UnattributedJ)
	for _, t := range m.Tenants {
		fmt.Printf("  %-12s %.4gJ over %d queries, %d inserts\n", t.Tenant, t.AttributedJ, t.Queries, t.Inserts)
	}
}
